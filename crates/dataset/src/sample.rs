//! One dataset sample: an aligned RGB / depth / ground-truth triple.

use sf_scene::{
    depth_image_from_cloud, render_ground_truth, render_rgb_with, surface_normals_from_depth,
    LidarSpec, Lighting, PinholeCamera, PointCloud, Rig, RoadCategory, SceneBuilder, Weather,
};
use sf_tensor::{Tensor, TensorRng};
use sf_vision::GrayImage;

/// Knobs for [`Sample::render_with`] beyond the defaults: traffic, the
/// LiDAR model, weather, rig size and the depth densification effort.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderOptions {
    /// Vehicles placed on the road (occluding the drivable surface).
    pub traffic: usize,
    /// The LiDAR geometry/noise model (ignored when `rig_size > 1`,
    /// where the [`Rig`] preset supplies per-mount specs).
    pub lidar: LidarSpec,
    /// Hole-filling iterations for the dense depth image.
    pub fill_iterations: usize,
    /// Weather applied to the RGB render and the LiDAR scan.
    /// [`Weather::clear`] (the default) is bit-identical to the
    /// pre-weather pipeline.
    pub weather: Weather,
    /// LiDAR mounts: 1 (default, the classic roof sensor driven by
    /// `lidar`), 2 or 3 ([`Rig`] presets whose independently-seeded
    /// clouds are merged before densification).
    pub rig_size: usize,
}

impl RenderOptions {
    /// Scales the LiDAR angular density and the densification effort by
    /// an integer factor — used when rendering probe samples at a higher
    /// camera resolution than the default sensor supports.
    pub fn for_resolution_factor(factor: usize) -> RenderOptions {
        let mut lidar = LidarSpec::default();
        lidar.rings *= factor.max(1);
        lidar.azimuth_steps *= factor.max(1);
        RenderOptions {
            lidar,
            fill_iterations: 3 * factor.max(1),
            ..RenderOptions::default()
        }
    }
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            traffic: 0,
            lidar: LidarSpec::default(),
            fill_iterations: 3,
            weather: Weather::clear(),
            rig_size: 1,
        }
    }
}

/// An aligned RGB / depth / ground-truth triple plus provenance.
///
/// Tensors use the `CHW` layout: `rgb` is `[3, H, W]`, `depth` and `gt`
/// are `[1, H, W]`. The ground truth is binary (1 = drivable road).
#[derive(Debug, Clone)]
pub struct Sample {
    /// Camera image, `[3, H, W]`, values in `[0, 1]`.
    pub rgb: Tensor,
    /// Dense LiDAR-derived inverse-depth image, `[1, H, W]`.
    pub depth: Tensor,
    /// Binary drivable-road mask, `[1, H, W]`.
    pub gt: Tensor,
    /// Scene category the sample was drawn from.
    pub category: RoadCategory,
    /// Name of the lighting preset used for the RGB render.
    pub lighting: &'static str,
    /// The scene seed (for exact regeneration).
    pub seed: u64,
}

impl Sample {
    /// Renders one sample from scratch: builds the scene for `seed`,
    /// renders RGB under `lighting`, scans the LiDAR and densifies the
    /// depth image, and rasterises the ground truth.
    pub fn render(
        category: RoadCategory,
        seed: u64,
        lighting_name: &'static str,
        lighting: Lighting,
        camera: &PinholeCamera,
    ) -> Sample {
        Sample::render_with_traffic(category, seed, lighting_name, lighting, camera, 0)
    }

    /// Like [`Sample::render`], but places `traffic` vehicles on the road
    /// (they occlude the drivable surface in all three maps).
    pub fn render_with_traffic(
        category: RoadCategory,
        seed: u64,
        lighting_name: &'static str,
        lighting: Lighting,
        camera: &PinholeCamera,
        traffic: usize,
    ) -> Sample {
        Sample::render_with(
            category,
            seed,
            lighting_name,
            lighting,
            camera,
            &RenderOptions {
                traffic,
                ..RenderOptions::default()
            },
        )
    }

    /// The fully configurable renderer behind the convenience
    /// constructors.
    pub fn render_with(
        category: RoadCategory,
        seed: u64,
        lighting_name: &'static str,
        lighting: Lighting,
        camera: &PinholeCamera,
        options: &RenderOptions,
    ) -> Sample {
        let scene = SceneBuilder::new(category, seed)
            .traffic(options.traffic)
            .build();
        let rgb = render_rgb_with(&scene, camera, lighting, options.weather);
        let gt = render_ground_truth(&scene, camera);
        let lidar_seed = seed ^ 0x11DA_5EED;
        let (cloud, max_range) = if options.rig_size <= 1 {
            // The classic single-sensor path: same spec, same RNG stream
            // as before rigs existed — bit-identical in clear weather.
            let mut lidar_rng = TensorRng::seed_from(lidar_seed);
            let spec = options.lidar;
            (
                spec.scan_with(&scene, options.weather, &mut lidar_rng),
                spec.max_range,
            )
        } else {
            // Multi-LiDAR: every mount scans from its own pose with its
            // own RNG stream; the merged cloud densifies into one image.
            let rig = Rig::of_size(options.rig_size.min(3)).expect("rig sizes 2 and 3 exist");
            let mut merged = PointCloud::new();
            let mut max_range = options.lidar.max_range;
            for mount in rig.mounts() {
                let stream = Rig::stream_seed(lidar_seed, 0, mount.source);
                let mut rng = TensorRng::seed_from(stream);
                for &p in mount
                    .spec
                    .scan_with(&scene, options.weather, &mut rng)
                    .points()
                {
                    merged.push(p);
                }
                max_range = max_range.max(mount.spec.max_range);
            }
            (merged, max_range)
        };
        let depth = depth_image_from_cloud(&cloud, camera, max_range, options.fill_iterations);
        let (h, w) = (camera.height(), camera.width());
        Sample {
            rgb: rgb.to_tensor(),
            depth: depth
                .to_tensor()
                .reshape(&[1, h, w])
                .expect("depth reshapes to [1,H,W]"),
            gt: gt
                .to_tensor()
                .reshape(&[1, h, w])
                .expect("gt reshapes to [1,H,W]"),
            category,
            lighting: lighting_name,
            seed,
        }
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.rgb.shape()[1]
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.rgb.shape()[2]
    }

    /// Fraction of ground-truth pixels that are road.
    pub fn road_fraction(&self) -> f32 {
        self.gt.mean()
    }

    /// A copy whose depth channel is replaced by SNE surface normals
    /// (`[3, H, W]`), the preprocessing of the paper's baseline lineage
    /// (SNE-RoadSeg). Use with a network built with
    /// `depth_channels = 3`.
    ///
    /// # Panics
    ///
    /// Panics if the sample's depth is not single-channel or the frame is
    /// smaller than 3×3.
    pub fn with_surface_normals(&self, camera: &PinholeCamera, max_range: f32) -> Sample {
        assert_eq!(
            self.depth.shape()[0],
            1,
            "sample depth is already multi-channel"
        );
        let (h, w) = (self.height(), self.width());
        let depth_img = GrayImage::from_raw(w, h, self.depth.data().to_vec());
        Sample {
            depth: surface_normals_from_depth(&depth_img, camera, max_range),
            ..self.clone()
        }
    }

    /// A horizontally mirrored copy — the standard segmentation
    /// augmentation. All three aligned maps flip together, so the pair
    /// stays consistent.
    pub fn flipped(&self) -> Sample {
        Sample {
            rgb: self.rgb.flip_last_axis(),
            depth: self.depth.flip_last_axis(),
            gt: self.gt.flip_last_axis(),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_produces_aligned_shapes() {
        let cam = PinholeCamera::kitti_like(64, 24);
        let s = Sample::render(RoadCategory::UrbanMarked, 3, "day", Lighting::day(), &cam);
        assert_eq!(s.rgb.shape(), &[3, 24, 64]);
        assert_eq!(s.depth.shape(), &[1, 24, 64]);
        assert_eq!(s.gt.shape(), &[1, 24, 64]);
        assert_eq!(s.width(), 64);
        assert_eq!(s.height(), 24);
        let road = s.road_fraction();
        assert!(road > 0.05 && road < 0.8, "road fraction {road}");
    }

    #[test]
    fn same_seed_same_sample() {
        let cam = PinholeCamera::kitti_like(48, 16);
        let a = Sample::render(RoadCategory::UrbanUnmarked, 9, "day", Lighting::day(), &cam);
        let b = Sample::render(RoadCategory::UrbanUnmarked, 9, "day", Lighting::day(), &cam);
        assert_eq!(a.rgb, b.rgb);
        assert_eq!(a.depth, b.depth);
        assert_eq!(a.gt, b.gt);
    }

    #[test]
    fn surface_normal_encoding_has_three_channels() {
        let cam = PinholeCamera::kitti_like(48, 16);
        let s = Sample::render(RoadCategory::UrbanMarked, 33, "day", Lighting::day(), &cam);
        let n = s.with_surface_normals(&cam, 60.0);
        assert_eq!(n.depth.shape(), &[3, 16, 48]);
        assert_eq!(n.gt, s.gt);
        assert_eq!(n.rgb, s.rgb);
        // Components bounded to [-1, 1].
        assert!(n.depth.data().iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn traffic_reduces_road_fraction() {
        let cam = PinholeCamera::kitti_like(96, 32);
        let quiet = Sample::render(
            RoadCategory::UrbanMultipleMarked,
            21,
            "day",
            Lighting::day(),
            &cam,
        );
        let busy = Sample::render_with_traffic(
            RoadCategory::UrbanMultipleMarked,
            21,
            "day",
            Lighting::day(),
            &cam,
            4,
        );
        assert!(busy.road_fraction() < quiet.road_fraction());
    }

    #[test]
    fn flipped_sample_stays_aligned() {
        let cam = PinholeCamera::kitti_like(48, 16);
        let s = Sample::render(RoadCategory::UrbanMarked, 7, "day", Lighting::day(), &cam);
        let f = s.flipped();
        assert_eq!(f.rgb.shape(), s.rgb.shape());
        // Flipping twice recovers the original.
        assert_eq!(f.flipped().rgb, s.rgb);
        assert_eq!(f.flipped().gt, s.gt);
        // Road fraction is mirror-invariant.
        assert!((f.road_fraction() - s.road_fraction()).abs() < 1e-6);
        // Left column of the flip equals the right column of the
        // original ground truth.
        let w = s.width();
        for y in 0..s.height() {
            assert_eq!(f.gt.at(&[0, y, 0]), s.gt.at(&[0, y, w - 1]));
        }
    }

    #[test]
    fn clear_weather_options_are_bit_identical_to_default() {
        let cam = PinholeCamera::kitti_like(48, 16);
        let base = Sample::render(RoadCategory::UrbanMarked, 5, "day", Lighting::day(), &cam);
        let opts = RenderOptions {
            weather: Weather::clear(),
            rig_size: 1,
            ..RenderOptions::default()
        };
        let explicit = Sample::render_with(
            RoadCategory::UrbanMarked,
            5,
            "day",
            Lighting::day(),
            &cam,
            &opts,
        );
        assert_eq!(base.rgb, explicit.rgb);
        assert_eq!(base.depth, explicit.depth);
        assert_eq!(base.gt, explicit.gt);
    }

    #[test]
    fn fog_degrades_both_modalities_but_not_gt() {
        let cam = PinholeCamera::kitti_like(48, 16);
        let clear = Sample::render(RoadCategory::UrbanMarked, 5, "day", Lighting::day(), &cam);
        let opts = RenderOptions {
            weather: Weather::fog(0.9),
            ..RenderOptions::default()
        };
        let foggy = Sample::render_with(
            RoadCategory::UrbanMarked,
            5,
            "day",
            Lighting::day(),
            &cam,
            &opts,
        );
        assert_ne!(clear.rgb, foggy.rgb, "fog must change the camera");
        assert_ne!(clear.depth, foggy.depth, "fog must change the LiDAR");
        assert_eq!(clear.gt, foggy.gt, "ground truth is weather-invariant");
        // The foggy depth image carries less signal (fewer/nearer returns).
        assert!(foggy.depth.sum() < clear.depth.sum());
    }

    #[test]
    fn bigger_rigs_densify_the_depth_image() {
        let cam = PinholeCamera::kitti_like(48, 16);
        let render = |rig_size| {
            let opts = RenderOptions {
                rig_size,
                fill_iterations: 0,
                ..RenderOptions::default()
            };
            Sample::render_with(
                RoadCategory::UrbanMarked,
                11,
                "day",
                Lighting::day(),
                &cam,
                &opts,
            )
        };
        let single = render(1);
        let triple = render(3);
        let observed = |s: &Sample| s.depth.data().iter().filter(|&&v| v > 0.0).count();
        assert!(
            observed(&triple) >= observed(&single),
            "extra mounts must not lose coverage: {} vs {}",
            observed(&triple),
            observed(&single)
        );
        assert_ne!(single.depth, triple.depth);
        // Deterministic: same options, same depths.
        assert_eq!(triple.depth, render(3).depth);
    }

    #[test]
    fn lighting_changes_rgb_but_not_depth_or_gt() {
        let cam = PinholeCamera::kitti_like(48, 16);
        let day = Sample::render(RoadCategory::UrbanMarked, 5, "day", Lighting::day(), &cam);
        let night = Sample::render(
            RoadCategory::UrbanMarked,
            5,
            "night",
            Lighting::night(),
            &cam,
        );
        assert_ne!(day.rgb, night.rgb);
        assert_eq!(day.depth, night.depth);
        assert_eq!(day.gt, night.gt);
    }
}
