//! Dataset disk persistence: save a generated [`RoadDataset`] as netpbm
//! triples plus a text index, and load it back — so expensive renders can
//! be shared between tools and runs.
//!
//! On-disk layout:
//!
//! ```text
//! <dir>/index.txt                 # header line + one line per sample
//! <dir>/train_0000_rgb.ppm        # camera frame
//! <dir>/train_0000_depth.pgm      # dense inverse-depth image
//! <dir>/train_0000_gt.pgm         # binary road mask
//! <dir>/test_0000_rgb.ppm …
//! ```

use std::fmt;
use std::io::{self, Write as _};
use std::path::Path;

use sf_scene::RoadCategory;
use sf_vision::{read_pgm, read_ppm, GrayImage, ReadImageError, RgbImage};

use crate::{DatasetConfig, RoadDataset, Sample};

/// Errors produced while loading a stored dataset.
#[derive(Debug)]
pub enum LoadDatasetError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// An image file failed to parse.
    Image(String, ReadImageError),
    /// The index file is malformed.
    BadIndex(String),
}

impl fmt::Display for LoadDatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadDatasetError::Io(e) => write!(f, "i/o error: {e}"),
            LoadDatasetError::Image(path, e) => write!(f, "{path}: {e}"),
            LoadDatasetError::BadIndex(reason) => write!(f, "malformed index: {reason}"),
        }
    }
}

impl std::error::Error for LoadDatasetError {}

impl From<io::Error> for LoadDatasetError {
    fn from(e: io::Error) -> Self {
        LoadDatasetError::Io(e)
    }
}

fn category_code(c: RoadCategory) -> &'static str {
    c.code()
}

fn category_from_code(code: &str) -> Option<RoadCategory> {
    RoadCategory::ALL.into_iter().find(|c| c.code() == code)
}

fn lighting_name(stored: &str) -> &'static str {
    // Lighting names are a closed set; map unknown strings to "day".
    match stored {
        "night" => "night",
        "overexposed" => "overexposed",
        "shadows" => "shadows",
        _ => "day",
    }
}

impl RoadDataset {
    /// Writes the dataset (index + all image triples) under `dir`,
    /// creating it if needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_to_dir(&self, dir: impl AsRef<Path>) -> io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut index = std::fs::File::create(dir.join("index.txt"))?;
        let c = self.config();
        writeln!(
            index,
            "roadset-v1 width={} height={} seed={}",
            c.width, c.height, c.seed
        )?;
        for (split, samples) in [("train", self.train(None)), ("test", self.test(None))] {
            for (i, sample) in samples.iter().enumerate() {
                let stem = format!("{split}_{i:04}");
                write_sample(dir, &stem, sample)?;
                writeln!(
                    index,
                    "{split} {stem} category={} lighting={} seed={}",
                    category_code(sample.category),
                    sample.lighting,
                    sample.seed
                )?;
            }
        }
        Ok(())
    }

    /// Loads a dataset previously written by [`RoadDataset::save_to_dir`].
    ///
    /// # Errors
    ///
    /// Returns a [`LoadDatasetError`] on I/O failure, unreadable images or
    /// a malformed index.
    pub fn load_from_dir(dir: impl AsRef<Path>) -> Result<RoadDataset, LoadDatasetError> {
        let dir = dir.as_ref();
        let index = std::fs::read_to_string(dir.join("index.txt"))?;
        let mut lines = index.lines();
        let header = lines
            .next()
            .ok_or_else(|| LoadDatasetError::BadIndex("empty index".to_string()))?;
        let mut config = DatasetConfig {
            train_per_category: 0,
            test_per_category: 0,
            ..DatasetConfig::standard()
        };
        let mut header_fields = header.split_whitespace();
        if header_fields.next() != Some("roadset-v1") {
            return Err(LoadDatasetError::BadIndex(
                "missing roadset-v1 header".to_string(),
            ));
        }
        for field in header_fields {
            let Some((key, value)) = field.split_once('=') else {
                return Err(LoadDatasetError::BadIndex(format!("bad field {field:?}")));
            };
            let parse = |v: &str| {
                v.parse::<usize>()
                    .map_err(|_| LoadDatasetError::BadIndex(format!("bad integer {v:?}")))
            };
            match key {
                "width" => config.width = parse(value)?,
                "height" => config.height = parse(value)?,
                "seed" => {
                    config.seed = value
                        .parse()
                        .map_err(|_| LoadDatasetError::BadIndex(format!("bad seed {value:?}")))?;
                }
                _ => {}
            }
        }
        let mut train = Vec::new();
        let mut test = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let split = parts
                .next()
                .ok_or_else(|| LoadDatasetError::BadIndex(format!("short line {line:?}")))?;
            let stem = parts
                .next()
                .ok_or_else(|| LoadDatasetError::BadIndex(format!("short line {line:?}")))?;
            let mut category = RoadCategory::UrbanMarked;
            let mut lighting = "day";
            let mut seed = 0u64;
            for field in parts {
                let Some((key, value)) = field.split_once('=') else {
                    continue;
                };
                match key {
                    "category" => {
                        category = category_from_code(value).ok_or_else(|| {
                            LoadDatasetError::BadIndex(format!("unknown category {value:?}"))
                        })?;
                    }
                    "lighting" => lighting = lighting_name(value),
                    "seed" => seed = value.parse().unwrap_or(0),
                    _ => {}
                }
            }
            let sample = read_sample(dir, stem, category, lighting, seed)?;
            match split {
                "train" => train.push(sample),
                "test" => test.push(sample),
                other => {
                    return Err(LoadDatasetError::BadIndex(format!(
                        "unknown split {other:?}"
                    )))
                }
            }
        }
        // Per-category counts are derived, not stored; record the totals.
        config.train_per_category = train.len() / RoadCategory::ALL.len().max(1);
        config.test_per_category = test.len() / RoadCategory::ALL.len().max(1);
        Ok(RoadDataset::from_parts(config, train, test))
    }
}

fn write_sample(dir: &Path, stem: &str, sample: &Sample) -> io::Result<()> {
    let (w, h) = (sample.width(), sample.height());
    RgbImage::from_tensor(&sample.rgb).write_ppm(dir.join(format!("{stem}_rgb.ppm")))?;
    GrayImage::from_raw(w, h, sample.depth.data().to_vec())
        .write_pgm(dir.join(format!("{stem}_depth.pgm")))?;
    GrayImage::from_raw(w, h, sample.gt.data().to_vec())
        .write_pgm(dir.join(format!("{stem}_gt.pgm")))?;
    Ok(())
}

fn read_sample(
    dir: &Path,
    stem: &str,
    category: RoadCategory,
    lighting: &'static str,
    seed: u64,
) -> Result<Sample, LoadDatasetError> {
    let rgb_path = dir.join(format!("{stem}_rgb.ppm"));
    let rgb = read_ppm(&rgb_path)
        .map_err(|e| LoadDatasetError::Image(rgb_path.display().to_string(), e))?;
    let depth_path = dir.join(format!("{stem}_depth.pgm"));
    let depth = read_pgm(&depth_path)
        .map_err(|e| LoadDatasetError::Image(depth_path.display().to_string(), e))?;
    let gt_path = dir.join(format!("{stem}_gt.pgm"));
    let gt = read_pgm(&gt_path)
        .map_err(|e| LoadDatasetError::Image(gt_path.display().to_string(), e))?;
    let (w, h) = (rgb.width(), rgb.height());
    Ok(Sample {
        rgb: rgb.to_tensor(),
        depth: depth
            .to_tensor()
            .reshape(&[1, h, w])
            .expect("depth is [H,W]"),
        // Re-binarise: 8-bit quantisation may have produced 254/255.
        gt: gt
            .to_tensor()
            .map(|v| f32::from(v > 0.5))
            .reshape(&[1, h, w])
            .expect("gt is [H,W]"),
        category,
        lighting,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_tiny_dataset() {
        let dir = std::env::temp_dir().join("sf_dataset_storage_test");
        let _ = std::fs::remove_dir_all(&dir);
        let original = RoadDataset::generate(&DatasetConfig::tiny());
        original.save_to_dir(&dir).unwrap();
        let loaded = RoadDataset::load_from_dir(&dir).unwrap();
        assert_eq!(loaded.train(None).len(), original.train(None).len());
        assert_eq!(loaded.test(None).len(), original.test(None).len());
        for (a, b) in loaded.train(None).iter().zip(original.train(None)) {
            assert_eq!(a.category, b.category);
            assert_eq!(a.lighting, b.lighting);
            assert_eq!(a.seed, b.seed);
            // Ground truth is binary and survives 8-bit storage exactly.
            assert_eq!(a.gt, b.gt);
            // RGB/depth survive up to 8-bit quantisation.
            let max_err = a.rgb.sub(&b.rgb).map(f32::abs).max();
            assert!(max_err <= 1.0 / 255.0 + 1e-6, "rgb error {max_err}");
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn loaded_dataset_preserves_category_filters() {
        let dir = std::env::temp_dir().join("sf_dataset_storage_cats");
        let _ = std::fs::remove_dir_all(&dir);
        let original = RoadDataset::generate(&DatasetConfig::tiny());
        original.save_to_dir(&dir).unwrap();
        let loaded = RoadDataset::load_from_dir(&dir).unwrap();
        for category in RoadCategory::ALL {
            assert_eq!(
                loaded.train(Some(category)).len(),
                original.train(Some(category)).len()
            );
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn malformed_index_is_rejected() {
        let dir = std::env::temp_dir().join("sf_dataset_storage_bad");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("index.txt"), "not-a-roadset\n").unwrap();
        assert!(matches!(
            RoadDataset::load_from_dir(&dir),
            Err(LoadDatasetError::BadIndex(_))
        ));
        std::fs::write(dir.join("index.txt"), "roadset-v1 width=48 height=16 seed=1\ntrain missing_frame category=UM lighting=day seed=2\n").unwrap();
        assert!(matches!(
            RoadDataset::load_from_dir(&dir),
            Err(LoadDatasetError::Image(_, _))
        ));
        std::fs::remove_dir_all(dir).unwrap();
        assert!(matches!(
            RoadDataset::load_from_dir("/definitely/not/here"),
            Err(LoadDatasetError::Io(_))
        ));
    }
}
