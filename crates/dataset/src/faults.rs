//! Injectable sensor failures for robustness experiments and testing.
//!
//! The paper argues (Fig. 9, Sec. 5) that camera/LiDAR middle fusion
//! survives adverse conditions; this module makes that claim testable by
//! corrupting the depth channel the way real LiDAR pipelines fail:
//! dropouts, dead scanlines, noise, extrinsic drift, frozen frames and
//! impulse noise. Corruption is driven by a seeded [`TensorRng`], so the
//! same seed always produces bit-identical corrupted tensors — fault
//! experiments are as reproducible as everything else in the stack.
//!
//! # Examples
//!
//! ```
//! use sf_dataset::{FaultInjector, SensorFault};
//! use sf_tensor::Tensor;
//!
//! let fault: SensorFault = "depth-dropout:0.5".parse().unwrap();
//! let mut a = FaultInjector::new(fault, 7);
//! let mut b = FaultInjector::new(fault, 7);
//! let depth = Tensor::full(&[1, 4, 6], 0.8);
//! assert_eq!(a.corrupt_depth(&depth), b.corrupt_depth(&depth));
//! ```

use std::fmt;
use std::str::FromStr;

use sf_tensor::{Tensor, TensorRng};

use crate::{Batch, Sample};

/// Full-scale value of the normalized inverse-depth images; salt pixels
/// saturate to this.
const FULL_SCALE: f32 = 1.0;

/// One injectable depth-sensor failure mode.
///
/// Parsed from `kind[:param]` CLI specs — see [`SensorFault::from_str`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorFault {
    /// Each depth pixel is zeroed independently with probability `p`
    /// (`p = 1` is a completely dead sensor).
    DepthDropout {
        /// Per-pixel dropout probability in `[0, 1]`.
        p: f64,
    },
    /// Each image row dies independently with probability `p` — the
    /// scanline failure pattern of a LiDAR losing rings.
    DeadRows {
        /// Per-row death probability in `[0, 1]`.
        p: f64,
    },
    /// Additive zero-mean Gaussian noise on every pixel.
    GaussianNoise {
        /// Noise standard deviation (depth images live in `[0, 1]`).
        sigma: f32,
    },
    /// Extrinsic calibration drift: the depth image is translated by
    /// `(dx, dy)` pixels with zero fill at the exposed border.
    Miscalibration {
        /// Horizontal shift in pixels (positive moves content right).
        dx: i32,
        /// Vertical shift in pixels (positive moves content down).
        dy: i32,
    },
    /// A frozen sensor pipeline: every frame after the first is replaced
    /// by the first frame the injector ever saw (shapes permitting).
    StaleFrame,
    /// Impulse (salt-and-pepper) noise: each pixel is forced to zero or
    /// full scale, each with probability `p / 2`.
    SaltPepper {
        /// Per-pixel impulse probability in `[0, 1]`.
        p: f64,
    },
}

impl SensorFault {
    /// All fault kinds at a common `severity` knob in `[0, 1]`, the axis
    /// of the fault-matrix experiment. Severity maps to each kind's
    /// natural parameter (probability, sigma, or shift magnitude).
    pub fn matrix_faults(severity: f64) -> Vec<SensorFault> {
        vec![
            SensorFault::DepthDropout { p: severity },
            SensorFault::DeadRows { p: severity },
            SensorFault::GaussianNoise {
                sigma: severity as f32,
            },
            SensorFault::Miscalibration {
                dx: (severity * 6.0).round() as i32,
                dy: (severity * 2.0).round() as i32,
            },
            SensorFault::StaleFrame,
            SensorFault::SaltPepper { p: severity },
        ]
    }
}

impl fmt::Display for SensorFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensorFault::DepthDropout { p } => write!(f, "depth-dropout:{p}"),
            SensorFault::DeadRows { p } => write!(f, "dead-rows:{p}"),
            SensorFault::GaussianNoise { sigma } => write!(f, "gaussian-noise:{sigma}"),
            SensorFault::Miscalibration { dx, dy } => write!(f, "miscalibration:{dx},{dy}"),
            SensorFault::StaleFrame => write!(f, "stale-frame"),
            SensorFault::SaltPepper { p } => write!(f, "salt-pepper:{p}"),
        }
    }
}

/// Error from parsing a `kind[:param]` fault spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFaultError {
    /// The spec that failed to parse.
    pub spec: String,
}

impl fmt::Display for ParseFaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid fault spec {:?} (expected depth-dropout:<p> | dead-rows:<p> | \
             gaussian-noise:<sigma> | miscalibration:<dx>,<dy> | stale-frame | salt-pepper:<p>)",
            self.spec
        )
    }
}

impl std::error::Error for ParseFaultError {}

impl FromStr for SensorFault {
    type Err = ParseFaultError;

    /// Parses CLI specs like `depth-dropout:0.5` or `miscalibration:3,1`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseFaultError {
            spec: s.to_string(),
        };
        let (kind, param) = match s.split_once(':') {
            Some((k, p)) => (k, Some(p)),
            None => (s, None),
        };
        let prob = |p: &str| {
            p.parse::<f64>()
                .ok()
                .filter(|v| (0.0..=1.0).contains(v))
                .ok_or_else(err)
        };
        match (kind, param) {
            ("depth-dropout", Some(p)) => Ok(SensorFault::DepthDropout { p: prob(p)? }),
            ("dead-rows", Some(p)) => Ok(SensorFault::DeadRows { p: prob(p)? }),
            ("gaussian-noise", Some(sigma)) => Ok(SensorFault::GaussianNoise {
                sigma: sigma
                    .parse::<f32>()
                    .ok()
                    .filter(|v| v.is_finite() && *v >= 0.0)
                    .ok_or_else(err)?,
            }),
            ("miscalibration", Some(shift)) => {
                let (dx, dy) = shift.split_once(',').ok_or_else(err)?;
                Ok(SensorFault::Miscalibration {
                    dx: dx.trim().parse().map_err(|_| err())?,
                    dy: dy.trim().parse().map_err(|_| err())?,
                })
            }
            ("stale-frame", None) => Ok(SensorFault::StaleFrame),
            ("salt-pepper", Some(p)) => Ok(SensorFault::SaltPepper { p: prob(p)? }),
            _ => Err(err()),
        }
    }
}

/// A seeded corruptor applying one [`SensorFault`] to depth tensors.
///
/// Deterministic: two injectors built with the same fault and seed, fed
/// the same sequence of tensors, produce bit-identical corruption. The
/// RNG stream advances per call, so corrupting a sequence of frames gives
/// each frame independent (but reproducible) noise.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    fault: SensorFault,
    rng: TensorRng,
    /// The first frame ever seen, for [`SensorFault::StaleFrame`].
    frozen: Option<Tensor>,
}

impl FaultInjector {
    /// Creates an injector for `fault` seeded with `seed`.
    pub fn new(fault: SensorFault, seed: u64) -> FaultInjector {
        FaultInjector {
            fault,
            rng: TensorRng::seed_from(seed),
            frozen: None,
        }
    }

    /// The fault this injector applies.
    pub fn fault(&self) -> SensorFault {
        self.fault
    }

    /// Corrupts a depth tensor whose last two axes are `H × W` (so both
    /// `[C, H, W]` samples and `[N, C, H, W]` batches work).
    ///
    /// # Panics
    ///
    /// Panics if the tensor has fewer than two axes.
    pub fn corrupt_depth(&mut self, depth: &Tensor) -> Tensor {
        let shape = depth.shape();
        assert!(shape.len() >= 2, "depth tensors need at least H and W axes");
        let (h, w) = (shape[shape.len() - 2], shape[shape.len() - 1]);
        let planes: usize = shape[..shape.len() - 2].iter().product();
        let mut out = depth.clone();
        match self.fault {
            SensorFault::DepthDropout { p } => {
                for v in out.data_mut() {
                    if self.rng.chance(p) {
                        *v = 0.0;
                    }
                }
            }
            SensorFault::DeadRows { p } => {
                let data = out.data_mut();
                for plane in 0..planes {
                    for row in 0..h {
                        if self.rng.chance(p) {
                            let start = (plane * h + row) * w;
                            data[start..start + w].fill(0.0);
                        }
                    }
                }
            }
            SensorFault::GaussianNoise { sigma } => {
                for v in out.data_mut() {
                    *v += sigma * self.rng.normal_scalar();
                }
            }
            SensorFault::Miscalibration { dx, dy } => {
                let src = depth.data();
                let data = out.data_mut();
                for plane in 0..planes {
                    let base = plane * h * w;
                    for y in 0..h {
                        for x in 0..w {
                            let sx = x as i64 - i64::from(dx);
                            let sy = y as i64 - i64::from(dy);
                            data[base + y * w + x] =
                                if (0..w as i64).contains(&sx) && (0..h as i64).contains(&sy) {
                                    src[base + sy as usize * w + sx as usize]
                                } else {
                                    0.0
                                };
                        }
                    }
                }
            }
            SensorFault::StaleFrame => match &self.frozen {
                Some(first) if first.shape() == shape => out = first.clone(),
                Some(_) => {} // shape changed; pass the frame through
                None => self.frozen = Some(depth.clone()),
            },
            SensorFault::SaltPepper { p } => {
                for v in out.data_mut() {
                    if self.rng.chance(p) {
                        *v = if self.rng.chance(0.5) {
                            0.0
                        } else {
                            FULL_SCALE
                        };
                    }
                }
            }
        }
        out
    }

    /// A copy of `sample` with its depth channel corrupted; RGB and
    /// ground truth are untouched (camera faults are a separate axis).
    pub fn corrupt_sample(&mut self, sample: &Sample) -> Sample {
        Sample {
            depth: self.corrupt_depth(&sample.depth),
            ..sample.clone()
        }
    }

    /// A copy of `batch` with its stacked depth tensor corrupted.
    pub fn corrupt_batch(&mut self, batch: &Batch) -> Batch {
        Batch {
            rgb: batch.rgb.clone(),
            depth: self.corrupt_depth(&batch.depth),
            gt: batch.gt.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetConfig, RoadDataset};

    fn ramp(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec((0..n).map(|i| 0.1 + (i % 7) as f32 * 0.1).collect(), shape).unwrap()
    }

    #[test]
    fn same_seed_bit_identical_corruption() {
        for fault in SensorFault::matrix_faults(0.4) {
            let mut a = FaultInjector::new(fault, 99);
            let mut b = FaultInjector::new(fault, 99);
            let depth = ramp(&[2, 1, 8, 12]);
            // A sequence of frames, to exercise the stream and StaleFrame.
            for _ in 0..3 {
                assert_eq!(
                    a.corrupt_depth(&depth),
                    b.corrupt_depth(&depth),
                    "{fault} must corrupt deterministically"
                );
            }
        }
    }

    #[test]
    fn spec_round_trips_for_randomized_faults() {
        // parse(display(fault)) == fault for arbitrary parameters: Rust's
        // float Display prints the shortest digits that re-parse exactly,
        // so the round trip must be lossless for every kind.
        sf_tensor::testkit::check_cases(128, |c| {
            let fault = match c.usize_in(0, 6) {
                0 => SensorFault::DepthDropout {
                    p: c.f32_in(0.0, 1.0) as f64,
                },
                1 => SensorFault::DeadRows {
                    p: c.f32_in(0.0, 1.0) as f64,
                },
                2 => SensorFault::GaussianNoise {
                    sigma: c.f32_in(0.0, 3.0),
                },
                3 => SensorFault::Miscalibration {
                    dx: c.usize_in(0, 40) as i32 - 20,
                    dy: c.usize_in(0, 40) as i32 - 20,
                },
                4 => SensorFault::StaleFrame,
                _ => SensorFault::SaltPepper {
                    p: c.f32_in(0.0, 1.0) as f64,
                },
            };
            let spec = fault.to_string();
            let reparsed: SensorFault = spec
                .parse()
                .unwrap_or_else(|e| panic!("case {}: {spec:?} failed to re-parse: {e}", c.case));
            assert_eq!(fault, reparsed, "case {}: spec {spec:?}", c.case);
        });
    }

    #[test]
    fn malformed_specs_give_typed_errors_naming_the_spec() {
        for spec in [
            "depth-dropout",      // missing parameter
            "depth-dropout:1.5",  // probability out of range
            "dead-rows:-0.1",     // negative probability
            "gaussian-noise:NaN", // non-finite sigma
            "miscalibration:3",   // missing dy
            "stale-frame:1",      // unexpected parameter
            "lens-flare:0.5",     // unknown kind
            "",
        ] {
            let err: ParseFaultError = spec.parse::<SensorFault>().unwrap_err();
            assert_eq!(err.spec, spec, "error must carry the offending spec");
            let message = err.to_string();
            assert!(
                message.contains(&format!("{spec:?}")) && message.contains("depth-dropout:<p>"),
                "message must name the spec and the expected grammar: {message}"
            );
        }
    }

    #[test]
    fn different_seeds_differ_for_stochastic_faults() {
        let fault = SensorFault::DepthDropout { p: 0.5 };
        let depth = ramp(&[1, 16, 16]);
        let a = FaultInjector::new(fault, 1).corrupt_depth(&depth);
        let b = FaultInjector::new(fault, 2).corrupt_depth(&depth);
        assert_ne!(a, b);
    }

    #[test]
    fn full_dropout_zeroes_everything() {
        let mut inj = FaultInjector::new(SensorFault::DepthDropout { p: 1.0 }, 5);
        let out = inj.corrupt_depth(&ramp(&[1, 4, 4]));
        assert!(out.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn dead_rows_kill_whole_rows() {
        let mut inj = FaultInjector::new(SensorFault::DeadRows { p: 0.5 }, 11);
        let out = inj.corrupt_depth(&Tensor::full(&[1, 16, 6], 0.7));
        let mut dead = 0;
        for row in 0..16 {
            let slice = &out.data()[row * 6..(row + 1) * 6];
            let all_dead = slice.iter().all(|&v| v == 0.0);
            let all_live = slice.iter().all(|&v| v == 0.7);
            assert!(all_dead || all_live, "rows die atomically");
            dead += usize::from(all_dead);
        }
        assert!(dead > 0, "p=0.5 over 16 rows should kill at least one");
    }

    #[test]
    fn miscalibration_shifts_content() {
        let mut depth = Tensor::zeros(&[1, 4, 4]);
        depth.set(&[0, 1, 1], 0.9);
        let mut inj = FaultInjector::new(SensorFault::Miscalibration { dx: 2, dy: 1 }, 0);
        let out = inj.corrupt_depth(&depth);
        assert_eq!(out.at(&[0, 2, 3]), 0.9);
        assert_eq!(out.at(&[0, 1, 1]), 0.0);
        // Negative shifts move the other way and zero-fill the far edge.
        let mut back = FaultInjector::new(SensorFault::Miscalibration { dx: -1, dy: 0 }, 0);
        let shifted = back.corrupt_depth(&out);
        assert_eq!(shifted.at(&[0, 2, 2]), 0.9);
    }

    #[test]
    fn stale_frame_freezes_the_first_frame() {
        let mut inj = FaultInjector::new(SensorFault::StaleFrame, 3);
        let first = ramp(&[1, 4, 4]);
        let second = Tensor::full(&[1, 4, 4], 0.25);
        assert_eq!(inj.corrupt_depth(&first), first, "first frame passes");
        assert_eq!(inj.corrupt_depth(&second), first, "later frames frozen");
        // A shape change passes through rather than panicking.
        let odd = Tensor::full(&[1, 2, 2], 0.5);
        assert_eq!(inj.corrupt_depth(&odd), odd);
    }

    #[test]
    fn salt_pepper_only_produces_extremes_or_originals() {
        let mut inj = FaultInjector::new(SensorFault::SaltPepper { p: 0.6 }, 21);
        let out = inj.corrupt_depth(&Tensor::full(&[1, 20, 20], 0.4));
        let mut impulses = 0;
        for &v in out.data() {
            assert!(v == 0.4 || v == 0.0 || v == FULL_SCALE);
            impulses += usize::from(v != 0.4);
        }
        assert!(impulses > 0);
    }

    #[test]
    fn sample_and_batch_corruption_touch_only_depth() {
        let data = RoadDataset::generate(&DatasetConfig::tiny());
        let train = data.train(None);
        let mut inj = FaultInjector::new(SensorFault::GaussianNoise { sigma: 0.3 }, 8);
        let corrupted = inj.corrupt_sample(train[0]);
        assert_eq!(corrupted.rgb, train[0].rgb);
        assert_eq!(corrupted.gt, train[0].gt);
        assert_ne!(corrupted.depth, train[0].depth);

        let batch = Batch::from_samples(&train[..3]);
        let cb = inj.corrupt_batch(&batch);
        assert_eq!(cb.rgb, batch.rgb);
        assert_eq!(cb.gt, batch.gt);
        assert_ne!(cb.depth, batch.depth);
        assert_eq!(cb.depth.shape(), batch.depth.shape());
    }

    #[test]
    fn specs_round_trip_through_display_and_parse() {
        let specs = [
            "depth-dropout:0.5",
            "dead-rows:0.25",
            "gaussian-noise:0.2",
            "miscalibration:3,-1",
            "stale-frame",
            "salt-pepper:0.1",
        ];
        for spec in specs {
            let fault: SensorFault = spec.parse().unwrap();
            assert_eq!(fault.to_string(), spec);
        }
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for bad in [
            "depth-dropout",
            "depth-dropout:1.5",
            "depth-dropout:x",
            "gaussian-noise:-1",
            "miscalibration:3",
            "stale-frame:0.5",
            "fog:0.5",
            "",
        ] {
            let err = bad.parse::<SensorFault>().unwrap_err();
            assert_eq!(err.spec, bad);
            assert!(err.to_string().contains("fault spec"));
        }
    }

    #[test]
    fn matrix_covers_every_kind() {
        let faults = SensorFault::matrix_faults(1.0);
        assert_eq!(faults.len(), 6);
        assert!(faults.contains(&SensorFault::DepthDropout { p: 1.0 }));
        assert!(faults.contains(&SensorFault::StaleFrame));
    }
}
