//! Mini-batch assembly from samples.

use sf_tensor::Tensor;

use crate::Sample;

/// A stacked mini-batch of samples: `rgb [N,3,H,W]`, `depth [N,1,H,W]`,
/// `gt [N,1,H,W]`.
///
/// # Examples
///
/// ```
/// use sf_dataset::{Batch, DatasetConfig, RoadDataset};
///
/// let data = RoadDataset::generate(&DatasetConfig::tiny());
/// let train = data.train(None);
/// let batch = Batch::from_samples(&train[..4]);
/// assert_eq!(batch.rgb.shape()[0], 4);
/// assert_eq!(batch.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Batch {
    /// Camera images, `[N, 3, H, W]`.
    pub rgb: Tensor,
    /// Depth images, `[N, 1, H, W]`.
    pub depth: Tensor,
    /// Ground-truth masks, `[N, 1, H, W]`.
    pub gt: Tensor,
}

impl Batch {
    /// Stacks borrowed samples into one batch.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or resolutions disagree.
    pub fn from_samples(samples: &[&Sample]) -> Batch {
        assert!(!samples.is_empty(), "cannot build an empty batch");
        // stack_refs copies each sample's storage straight into the batch
        // buffer — one slice copy per tensor, no intermediate clones.
        let rgb = Tensor::stack_refs(&samples.iter().map(|s| &s.rgb).collect::<Vec<_>>())
            .expect("samples share resolution");
        let depth = Tensor::stack_refs(&samples.iter().map(|s| &s.depth).collect::<Vec<_>>())
            .expect("samples share resolution");
        let gt = Tensor::stack_refs(&samples.iter().map(|s| &s.gt).collect::<Vec<_>>())
            .expect("samples share resolution");
        Batch { rgb, depth, gt }
    }

    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.rgb.shape()[0]
    }

    /// True if the batch holds no samples (never constructible via
    /// [`Batch::from_samples`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetConfig, RoadDataset};

    #[test]
    fn batch_shapes() {
        let data = RoadDataset::generate(&DatasetConfig::tiny());
        let train = data.train(None);
        let batch = Batch::from_samples(&train[..3]);
        let c = data.config();
        assert_eq!(batch.rgb.shape(), &[3, 3, c.height, c.width]);
        assert_eq!(batch.depth.shape(), &[3, 1, c.height, c.width]);
        assert_eq!(batch.gt.shape(), &[3, 1, c.height, c.width]);
        assert!(!batch.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let _ = Batch::from_samples(&[]);
    }

    #[test]
    fn batch_preserves_sample_order() {
        let data = RoadDataset::generate(&DatasetConfig::tiny());
        let train = data.train(None);
        let batch = Batch::from_samples(&train[..2]);
        assert_eq!(batch.rgb.index_axis0(0), train[0].rgb);
        assert_eq!(batch.rgb.index_axis0(1), train[1].rgb);
    }
}
