//! Dataset configuration, parallel generation, and splits.

use sf_scene::{Lighting, PinholeCamera, RoadCategory, Weather};
use sf_tensor::TensorRng;

use crate::{RenderOptions, Sample};

/// Configuration for generating a [`RoadDataset`].
///
/// The real KITTI road set has ≈96 train / ≈96 test pairs per category at
/// 1242×375; the defaults here scale that down to CPU-trainable sizes
/// while keeping the same structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetConfig {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Training samples per road category.
    pub train_per_category: usize,
    /// Test samples per road category.
    pub test_per_category: usize,
    /// Master seed — every sample derives its scene seed from it.
    pub seed: u64,
    /// Fraction of samples rendered under an adverse lighting preset
    /// (night / over-exposure / shadows) instead of plain day.
    pub adverse_fraction: f64,
    /// Fraction of samples that contain on-road traffic (1–3 vehicles
    /// occluding the drivable surface).
    pub traffic_fraction: f64,
    /// Weather applied to every sample (RGB attenuation + LiDAR
    /// degradation). [`Weather::clear`] reproduces the pre-weather
    /// pipeline bit-identically.
    pub weather: Weather,
    /// LiDAR mounts per sample: 1 = the classic roof sensor, 2–3 merge a
    /// multi-mount [`sf_scene::Rig`]'s clouds into the depth image.
    pub rig_size: usize,
}

impl DatasetConfig {
    /// The default experiment scale: 48 train / 24 test per category at
    /// 96×32.
    pub fn standard() -> Self {
        DatasetConfig {
            width: 96,
            height: 32,
            train_per_category: 48,
            test_per_category: 24,
            seed: 2022,
            adverse_fraction: 0.3,
            traffic_fraction: 0.25,
            weather: Weather::clear(),
            rig_size: 1,
        }
    }

    /// A minimal configuration for unit tests: 6 train / 3 test at 48×16.
    pub fn tiny() -> Self {
        DatasetConfig {
            width: 48,
            height: 16,
            train_per_category: 6,
            test_per_category: 3,
            seed: 7,
            adverse_fraction: 0.3,
            traffic_fraction: 0.25,
            weather: Weather::clear(),
            rig_size: 1,
        }
    }

    /// The camera shared by all samples of this configuration.
    pub fn camera(&self) -> PinholeCamera {
        PinholeCamera::kitti_like(self.width, self.height)
    }
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig::standard()
    }
}

/// A generated dataset with train/test splits over all three road
/// categories.
#[derive(Debug, Clone)]
pub struct RoadDataset {
    config: DatasetConfig,
    train: Vec<Sample>,
    test: Vec<Sample>,
}

impl RoadDataset {
    /// Generates the dataset deterministically from `config`, spreading
    /// sample rendering across threads.
    pub fn generate(config: &DatasetConfig) -> RoadDataset {
        let camera = config.camera();
        let mut specs: Vec<(RoadCategory, u64, &'static str, Lighting, bool, usize)> = Vec::new();
        let mut rng = TensorRng::seed_from(config.seed);
        for category in RoadCategory::ALL {
            for i in 0..config.train_per_category + config.test_per_category {
                let is_train = i < config.train_per_category;
                let seed = rng.index(usize::MAX - 1) as u64;
                let (name, lighting) = pick_lighting(&mut rng, config.adverse_fraction);
                let traffic = if rng.chance(config.traffic_fraction) {
                    1 + rng.index(3)
                } else {
                    0
                };
                specs.push((category, seed, name, lighting, is_train, traffic));
            }
        }
        let rendered: Vec<(Sample, bool)> = sf_runtime::parallel_map(
            &specs,
            |&(category, seed, name, lighting, is_train, traffic)| {
                let options = RenderOptions {
                    traffic,
                    weather: config.weather,
                    rig_size: config.rig_size.max(1),
                    ..RenderOptions::default()
                };
                (
                    Sample::render_with(category, seed, name, lighting, &camera, &options),
                    is_train,
                )
            },
        );
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (sample, is_train) in rendered {
            if is_train {
                train.push(sample);
            } else {
                test.push(sample);
            }
        }
        RoadDataset {
            config: *config,
            train,
            test,
        }
    }

    /// Reassembles a dataset from explicit parts (used by the disk
    /// loader).
    pub(crate) fn from_parts(
        config: DatasetConfig,
        train: Vec<Sample>,
        test: Vec<Sample>,
    ) -> RoadDataset {
        RoadDataset {
            config,
            train,
            test,
        }
    }

    /// The generating configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Training samples, optionally restricted to one category.
    pub fn train(&self, category: Option<RoadCategory>) -> Vec<&Sample> {
        filter(&self.train, category)
    }

    /// Test samples, optionally restricted to one category.
    pub fn test(&self, category: Option<RoadCategory>) -> Vec<&Sample> {
        filter(&self.test, category)
    }

    /// A seeded shuffled copy of the training indices (for epoch
    /// shuffling).
    pub fn shuffled_train_indices(&self, category: Option<RoadCategory>, seed: u64) -> Vec<usize> {
        let n = self.train(category).len();
        let mut indices: Vec<usize> = (0..n).collect();
        TensorRng::seed_from(seed).shuffle(&mut indices);
        indices
    }
}

fn filter(samples: &[Sample], category: Option<RoadCategory>) -> Vec<&Sample> {
    samples
        .iter()
        .filter(|s| category.is_none_or(|c| s.category == c))
        .collect()
}

/// The adverse presets by *name*, resolved through [`Lighting::by_name`]
/// so a reordered or extended `Lighting::presets()` cannot silently remap
/// which condition a sample gets. Draws exactly one `rng.index(3)` like
/// the historical positional lookup, so existing datasets regenerate
/// bit-identically.
fn pick_lighting(rng: &mut TensorRng, adverse_fraction: f64) -> (&'static str, Lighting) {
    const ADVERSE: [&str; 3] = ["night", "overexposed", "shadows"];
    if rng.chance(adverse_fraction) {
        let name = ADVERSE[rng.index(3)];
        let lighting = Lighting::by_name(name).expect("adverse presets exist");
        (name, lighting)
    } else {
        ("day", Lighting::day())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = DatasetConfig::tiny();
        let a = RoadDataset::generate(&config);
        let b = RoadDataset::generate(&config);
        assert_eq!(a.train.len(), b.train.len());
        for (x, y) in a.train.iter().zip(&b.train) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.rgb, y.rgb);
        }
    }

    #[test]
    fn split_sizes_match_config() {
        let config = DatasetConfig::tiny();
        let data = RoadDataset::generate(&config);
        assert_eq!(data.train(None).len(), 18);
        assert_eq!(data.test(None).len(), 9);
        for category in RoadCategory::ALL {
            assert_eq!(data.train(Some(category)).len(), 6);
            assert_eq!(data.test(Some(category)).len(), 3);
        }
    }

    #[test]
    fn adverse_lighting_appears_when_requested() {
        let mut config = DatasetConfig::tiny();
        config.adverse_fraction = 1.0;
        config.train_per_category = 4;
        let data = RoadDataset::generate(&config);
        assert!(data.train(None).iter().all(|s| s.lighting != "day"));
        let mut config2 = DatasetConfig::tiny();
        config2.adverse_fraction = 0.0;
        let data2 = RoadDataset::generate(&config2);
        assert!(data2.train(None).iter().all(|s| s.lighting == "day"));
    }

    #[test]
    fn shuffled_indices_are_a_permutation() {
        let data = RoadDataset::generate(&DatasetConfig::tiny());
        let idx = data.shuffled_train_indices(None, 1);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..18).collect::<Vec<_>>());
        // Different seed → different order (overwhelmingly likely).
        let idx2 = data.shuffled_train_indices(None, 2);
        assert_ne!(idx, idx2);
    }

    #[test]
    fn all_samples_share_resolution() {
        let config = DatasetConfig::tiny();
        let data = RoadDataset::generate(&config);
        for s in data.train(None).into_iter().chain(data.test(None)) {
            assert_eq!(s.width(), config.width);
            assert_eq!(s.height(), config.height);
        }
    }
}
