//! The KITTI road-benchmark metrics: MaxF (F-score), AP, precision,
//! recall and IoU, computed from probability maps.

use sf_vision::GrayImage;

/// A binary confusion-matrix accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// False negatives.
    pub fn_: u64,
    /// True negatives.
    pub tn: u64,
}

impl Confusion {
    /// Precision `tp / (tp + fp)`; 0 when undefined.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall `tp / (tp + fn)`; 0 when undefined.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F1 score (harmonic mean of precision and recall); 0 when
    /// undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Intersection-over-union `tp / (tp + fp + fn)`; 0 when undefined.
    pub fn iou(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp + self.fn_)
    }

    /// Merges another confusion matrix into this one.
    pub fn merge(&mut self, other: Confusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Confusion counts of a thresholded probability map against a binary
/// ground truth.
///
/// # Panics
///
/// Panics if the image dimensions differ.
pub fn confusion(prob: &GrayImage, gt: &GrayImage, threshold: f32) -> Confusion {
    assert_eq!(
        (prob.width(), prob.height()),
        (gt.width(), gt.height()),
        "confusion: image sizes differ"
    );
    let mut c = Confusion::default();
    for (&p, &t) in prob.data().iter().zip(gt.data()) {
        let pred = p >= threshold;
        let truth = t > 0.5;
        match (pred, truth) {
            (true, true) => c.tp += 1,
            (true, false) => c.fp += 1,
            (false, true) => c.fn_ += 1,
            (false, false) => c.tn += 1,
        }
    }
    c
}

/// The threshold (over a fixed sweep of 0.02 steps) that maximises F1 on
/// the pooled probability/ground-truth pairs, with the F1 it achieves.
pub fn max_f_threshold(pairs: &[(&GrayImage, &GrayImage)]) -> (f32, f64) {
    let mut best = (0.5f32, 0.0f64);
    let mut t = 0.02f32;
    while t < 1.0 {
        let mut c = Confusion::default();
        for (prob, gt) in pairs {
            c.merge(confusion(prob, gt, t));
        }
        let f = c.f1();
        if f > best.1 {
            best = (t, f);
        }
        t += 0.02;
    }
    best
}

/// Average precision: the precision–recall curve integrated over the same
/// threshold sweep (trapezoidal, recall-ordered), matching the benchmark's
/// AP definition in spirit.
pub fn average_precision(pairs: &[(&GrayImage, &GrayImage)]) -> f64 {
    // Collect (recall, precision) points over thresholds.
    let mut points: Vec<(f64, f64)> = Vec::new();
    let mut t = 0.02f32;
    while t < 1.0 {
        let mut c = Confusion::default();
        for (prob, gt) in pairs {
            c.merge(confusion(prob, gt, t));
        }
        points.push((c.recall(), c.precision()));
        t += 0.02;
    }
    points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("recalls are finite"));
    // Integrate precision over recall; anchor at recall 0 with the first
    // precision value.
    let mut ap = 0.0f64;
    let mut prev_r = 0.0f64;
    let mut prev_p = points.first().map(|&(_, p)| p).unwrap_or(0.0);
    for (r, p) in points {
        ap += (r - prev_r).max(0.0) * (p + prev_p) / 2.0;
        prev_r = r;
        prev_p = p;
    }
    ap
}

/// The full benchmark report for one model on one category: the five
/// numbers each column of Fig. 6 lists (scaled ×100 for display parity
/// with the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SegmentationEval {
    /// Maximum F-score over thresholds, ×100.
    pub f_score: f64,
    /// Average precision, ×100.
    pub ap: f64,
    /// Precision at the MaxF threshold, ×100.
    pub precision: f64,
    /// Recall at the MaxF threshold, ×100.
    pub recall: f64,
    /// IoU at the MaxF threshold, ×100.
    pub iou: f64,
}

impl SegmentationEval {
    /// Evaluates pooled probability maps against ground truths (both in
    /// the same space — image or BEV).
    pub fn from_pairs(pairs: &[(&GrayImage, &GrayImage)]) -> SegmentationEval {
        if pairs.is_empty() {
            return SegmentationEval::default();
        }
        let (threshold, max_f) = max_f_threshold(pairs);
        let mut c = Confusion::default();
        for (prob, gt) in pairs {
            c.merge(confusion(prob, gt, threshold));
        }
        SegmentationEval {
            f_score: max_f * 100.0,
            ap: average_precision(pairs) * 100.0,
            precision: c.precision() * 100.0,
            recall: c.recall() * 100.0,
            iou: c.iou() * 100.0,
        }
    }

    /// The metric values in the paper's column order
    /// (F-score, AP, PRE, REC, IOU).
    pub fn as_row(&self) -> [f64; 5] {
        [self.f_score, self.ap, self.precision, self.recall, self.iou]
    }
}

impl std::fmt::Display for SegmentationEval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "F={:.2} AP={:.2} PRE={:.2} REC={:.2} IOU={:.2}",
            self.f_score, self.ap, self.precision, self.recall, self.iou
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(data: &[f32], w: usize) -> GrayImage {
        GrayImage::from_raw(w, data.len() / w, data.to_vec())
    }

    #[test]
    fn confusion_counts() {
        let prob = img(&[0.9, 0.8, 0.2, 0.1], 2);
        let gt = img(&[1.0, 0.0, 1.0, 0.0], 2);
        let c = confusion(&prob, &gt, 0.5);
        assert_eq!(
            c,
            Confusion {
                tp: 1,
                fp: 1,
                fn_: 1,
                tn: 1
            }
        );
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 0.5);
        assert_eq!(c.f1(), 0.5);
        assert!((c.iou() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_prediction_scores_100() {
        let gt = img(&[1.0, 0.0, 1.0, 0.0, 1.0, 0.0], 3);
        let eval = SegmentationEval::from_pairs(&[(&gt, &gt)]);
        assert!((eval.f_score - 100.0).abs() < 1e-9);
        assert!((eval.iou - 100.0).abs() < 1e-9);
        assert!(eval.ap > 99.0);
    }

    #[test]
    fn inverted_prediction_scores_zero_f() {
        let gt = img(&[1.0, 0.0], 2);
        let inv = img(&[0.0, 1.0], 2);
        let eval = SegmentationEval::from_pairs(&[(&inv, &gt)]);
        assert_eq!(eval.f_score, 0.0);
    }

    #[test]
    fn max_f_picks_informative_threshold() {
        // Prediction separates classes at 0.6: thresholds in (0.4, 0.6]
        // give a perfect split.
        let prob = img(&[0.7, 0.65, 0.4, 0.3], 2);
        let gt = img(&[1.0, 1.0, 0.0, 0.0], 2);
        let (t, f) = max_f_threshold(&[(&prob, &gt)]);
        assert!((0.4..=0.66).contains(&t), "threshold {t}");
        assert!((f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn better_calibration_gives_higher_ap() {
        let gt = img(&[1.0, 1.0, 0.0, 0.0], 2);
        let sharp = img(&[0.95, 0.9, 0.05, 0.1], 2);
        // A false positive (0.6) outranks a true positive (0.55): the
        // classes are not separable at any threshold.
        let noisy = img(&[0.55, 0.9, 0.6, 0.1], 2);
        assert!(
            average_precision(&[(&sharp, &gt)]) > average_precision(&[(&noisy, &gt)]),
            "sharp should beat noisy"
        );
    }

    #[test]
    fn eval_of_empty_pairs_is_zero() {
        assert_eq!(
            SegmentationEval::from_pairs(&[]),
            SegmentationEval::default()
        );
    }

    #[test]
    fn merge_pools_counts() {
        let mut a = Confusion {
            tp: 1,
            fp: 2,
            fn_: 3,
            tn: 4,
        };
        a.merge(Confusion {
            tp: 10,
            fp: 20,
            fn_: 30,
            tn: 40,
        });
        assert_eq!(
            a,
            Confusion {
                tp: 11,
                fp: 22,
                fn_: 33,
                tn: 44
            }
        );
    }

    #[test]
    fn display_contains_all_metrics() {
        let gt = img(&[1.0, 0.0], 2);
        let s = SegmentationEval::from_pairs(&[(&gt, &gt)]).to_string();
        for key in ["F=", "AP=", "PRE=", "REC=", "IOU="] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
