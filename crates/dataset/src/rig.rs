//! Multi-LiDAR frame assembly: one scene observation fanned out into
//! per-mount depth streams.
//!
//! [`Sample`](crate::Sample) merges a rig's clouds into a single depth
//! image for training. The serve path wants the opposite: every mount's
//! stream kept separate and tagged with its source id, so each sensor
//! becomes its own `SourceId` at the server and the per-source circuit
//! breakers see genuinely independent inputs. [`RigFrame::render`] is
//! that assembly step — the soak harness drives it once per scene-clock
//! frame.

use sf_scene::{
    depth_image_from_cloud, render_ground_truth, render_rgb_with, Lighting, PinholeCamera, Rig,
    Scene, Weather,
};
use sf_tensor::{Tensor, TensorRng};

/// One frame of a multi-LiDAR rig: the shared camera view and ground
/// truth plus one independently-seeded depth image per mount.
#[derive(Debug, Clone)]
pub struct RigFrame {
    /// Camera image, `[3, H, W]`.
    pub rgb: Tensor,
    /// Binary drivable-road mask, `[1, H, W]`.
    pub gt: Tensor,
    /// Per-mount `(source id, depth image)` pairs in mount order; depth
    /// images are `[1, H, W]` normalised inverse depth.
    pub depths: Vec<(u64, Tensor)>,
}

impl RigFrame {
    /// Renders one frame of `rig` observing `scene`.
    ///
    /// The caller owns the scene clock: pass the frame index and a run
    /// seed, and every mount scans with the stream seed
    /// [`Rig::stream_seed`]`(run_seed, frame, source)` — so streams are
    /// independent across mounts and frames but exactly reproducible.
    /// Weather degrades the RGB and every mount's scan; the ground truth
    /// is weather-invariant.
    #[allow(clippy::too_many_arguments)]
    pub fn render(
        scene: &Scene,
        camera: &PinholeCamera,
        lighting: Lighting,
        weather: Weather,
        rig: &Rig,
        run_seed: u64,
        frame: u64,
        fill_iterations: usize,
    ) -> RigFrame {
        let (h, w) = (camera.height(), camera.width());
        let reshape = |t: Tensor| t.reshape(&[1, h, w]).expect("image reshapes to [1,H,W]");
        let rgb = render_rgb_with(scene, camera, lighting, weather);
        let gt = render_ground_truth(scene, camera);
        let depths = rig
            .mounts()
            .iter()
            .map(|mount| {
                let mut rng = TensorRng::seed_from(Rig::stream_seed(run_seed, frame, mount.source));
                let cloud = mount.spec.scan_with(scene, weather, &mut rng);
                let depth =
                    depth_image_from_cloud(&cloud, camera, mount.spec.max_range, fill_iterations);
                (mount.source, reshape(depth.to_tensor()))
            })
            .collect();
        RigFrame {
            rgb: rgb.to_tensor(),
            gt: reshape(gt.to_tensor()),
            depths,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_scene::{RoadCategory, SceneBuilder};

    fn setup() -> (Scene, PinholeCamera) {
        (
            SceneBuilder::new(RoadCategory::UrbanMarked, 17).build(),
            PinholeCamera::kitti_like(48, 16),
        )
    }

    #[test]
    fn streams_are_independent_and_tagged() {
        let (scene, cam) = setup();
        let frame = RigFrame::render(
            &scene,
            &cam,
            Lighting::day(),
            Weather::clear(),
            &Rig::triple(),
            99,
            0,
            2,
        );
        assert_eq!(frame.depths.len(), 3);
        let sources: Vec<u64> = frame.depths.iter().map(|(s, _)| *s).collect();
        assert_eq!(sources, [0, 1, 2]);
        assert_ne!(frame.depths[0].1, frame.depths[1].1);
        assert_ne!(frame.depths[1].1, frame.depths[2].1);
        for (_, depth) in &frame.depths {
            assert_eq!(depth.shape(), &[1, 16, 48]);
            assert!(depth.sum() > 0.0, "every mount sees the road");
        }
    }

    #[test]
    fn frames_advance_streams_but_reproduce_exactly() {
        let (scene, cam) = setup();
        let render = |frame| {
            RigFrame::render(
                &scene,
                &cam,
                Lighting::day(),
                Weather::clear(),
                &Rig::dual(),
                42,
                frame,
                2,
            )
        };
        let f0 = render(0);
        let f1 = render(1);
        assert_ne!(f0.depths[0].1, f1.depths[0].1, "streams advance per frame");
        let f0_again = render(0);
        assert_eq!(f0.depths[0].1, f0_again.depths[0].1);
        assert_eq!(f0.rgb, f0_again.rgb);
    }

    #[test]
    fn weather_hits_every_stream() {
        let (scene, cam) = setup();
        let render = |weather| {
            RigFrame::render(
                &scene,
                &cam,
                Lighting::day(),
                weather,
                &Rig::triple(),
                7,
                3,
                2,
            )
        };
        let clear = render(Weather::clear());
        let foggy = render(Weather::fog(0.9));
        assert_ne!(clear.rgb, foggy.rgb);
        assert_eq!(clear.gt, foggy.gt);
        for ((_, c), (_, f)) in clear.depths.iter().zip(&foggy.depths) {
            assert_ne!(c, f, "fog must degrade every mount");
            assert!(f.sum() < c.sum());
        }
    }
}
