//! A minimal wall-clock micro-benchmark harness, replacing the Criterion
//! dependency so the workspace builds hermetically.
//!
//! The design keeps Criterion's two useful ideas — warm-up plus
//! auto-calibrated batching so short routines are timed over many
//! iterations, and a fixed number of samples so results show spread — and
//! drops everything else (HTML reports, statistics beyond min/mean/max).
//!
//! Bench targets are plain `fn main()` binaries (`harness = false`):
//!
//! ```no_run
//! use sf_bench::BenchHarness;
//!
//! let mut h = BenchHarness::new("kernels");
//! h.bench("add_1k", || (0..1000u32).sum::<u32>());
//! h.finish();
//! ```
//!
//! `cargo bench -p sf-bench -- <filter>` runs only benchmarks whose name
//! contains `<filter>`. `--quick` (or `SF_BENCH_QUICK=1`) shrinks the
//! sample budget for smoke runs.

use std::time::{Duration, Instant};

/// Target wall-clock time for one timed sample (a batch of iterations).
const SAMPLE_TARGET: Duration = Duration::from_millis(10);
/// Warm-up budget before calibration.
const WARMUP: Duration = Duration::from_millis(50);

/// One benchmark's summary statistics (per-iteration durations).
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark name, unique within the suite.
    pub name: String,
    /// Iterations per timed sample after calibration.
    pub iters_per_sample: u64,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Fastest per-iteration time observed.
    pub min: Duration,
    /// Mean per-iteration time across all samples.
    pub mean: Duration,
    /// Slowest per-iteration time observed.
    pub max: Duration,
}

/// Collects and prints benchmark results for one suite (one bench target).
pub struct BenchHarness {
    suite: String,
    sample_count: usize,
    quick: bool,
    filter: Option<String>,
    records: Vec<BenchRecord>,
}

impl BenchHarness {
    /// Creates a harness, reading `--quick` and an optional name filter
    /// from the command line (anything after `cargo bench --` lands in
    /// `std::env::args`).
    pub fn new(suite: &str) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let quick = args.iter().any(|a| a == "--quick")
            || std::env::var("SF_BENCH_QUICK").is_ok_and(|v| v != "0");
        let filter = args.iter().find(|a| !a.starts_with('-')).cloned();
        BenchHarness {
            suite: suite.to_string(),
            sample_count: if quick { 3 } else { 20 },
            quick,
            filter,
            records: Vec::new(),
        }
    }

    /// Overrides the number of timed samples per benchmark (Criterion's
    /// `sample_size` analogue). Ignored in `--quick` mode.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.quick {
            self.sample_count = n.max(2);
        }
        self
    }

    /// Times `routine`, auto-calibrating how many iterations fill one
    /// sample. The routine's return value is passed through
    /// [`std::hint::black_box`] so it cannot be optimised away.
    pub fn bench<T>(&mut self, name: &str, mut routine: impl FnMut() -> T) {
        self.bench_with_setup(name, || (), |()| routine());
    }

    /// Like [`BenchHarness::bench`] but re-runs `setup` outside the timed
    /// region before every iteration (Criterion's `iter_batched`), for
    /// routines that consume or mutate their input.
    pub fn bench_with_setup<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        if let Some(f) = &self.filter {
            if !name.contains(f.as_str()) {
                return;
            }
        }

        // Warm up and estimate the per-iteration cost.
        let mut iters_done: u64 = 0;
        let mut spent = Duration::ZERO;
        let warmup = if self.quick { WARMUP / 10 } else { WARMUP };
        while spent < warmup || iters_done == 0 {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            spent += t0.elapsed();
            iters_done += 1;
        }
        let est = spent / iters_done as u32;
        let target = if self.quick {
            SAMPLE_TARGET / 10
        } else {
            SAMPLE_TARGET
        };
        let iters_per_sample = (target.as_nanos() / est.as_nanos().max(1)).clamp(1, 1 << 20) as u64;

        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_count {
            let mut sample = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let t0 = Instant::now();
                std::hint::black_box(routine(input));
                sample += t0.elapsed();
            }
            let per_iter = sample / iters_per_sample as u32;
            min = min.min(per_iter);
            max = max.max(per_iter);
            total += sample;
        }
        let record = BenchRecord {
            name: name.to_string(),
            iters_per_sample,
            samples: self.sample_count,
            min,
            mean: total / (self.sample_count as u32 * iters_per_sample as u32),
            max,
        };
        println!(
            "{:<44} {:>10} {:>10} {:>10}   ({} x {} iters)",
            record.name,
            fmt_duration(record.min),
            fmt_duration(record.mean),
            fmt_duration(record.max),
            record.samples,
            record.iters_per_sample,
        );
        self.records.push(record);
    }

    /// Results recorded so far, for programmatic comparisons.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Prints the suite footer. Call once at the end of `main`.
    pub fn finish(&self) {
        println!(
            "\n{}: {} benchmark(s){}",
            self.suite,
            self.records.len(),
            if self.quick { " [quick]" } else { "" }
        );
    }
}

/// Renders a duration with an auto-selected unit (ns/µs/ms/s).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_and_orders_results() {
        let mut h = BenchHarness {
            suite: "test".into(),
            sample_count: 2,
            quick: true,
            filter: None,
            records: Vec::new(),
        };
        h.bench("sum", || (0..100u32).sum::<u32>());
        h.bench_with_setup(
            "reverse",
            || vec![1u8, 2, 3],
            |mut v| {
                v.reverse();
                v
            },
        );
        assert_eq!(h.records().len(), 2);
        assert_eq!(h.records()[0].name, "sum");
        assert!(h.records()[1].min <= h.records()[1].max);
        assert!(h.records()[1].iters_per_sample >= 1);
    }

    #[test]
    fn filter_skips_non_matching_names() {
        let mut h = BenchHarness {
            suite: "test".into(),
            sample_count: 2,
            quick: true,
            filter: Some("keep".into()),
            records: Vec::new(),
        };
        h.bench("keep_this", || 1u32);
        h.bench("drop_this", || 2u32);
        assert_eq!(h.records().len(), 1);
        assert_eq!(h.records()[0].name, "keep_this");
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
