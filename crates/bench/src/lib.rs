//! The experiment harness: one module per table/figure of the paper, each
//! exposing a `run(scale)` function returning structured results and a
//! plain-text printer matching the paper's presentation.
//!
//! Binaries under `src/bin/` are thin wrappers:
//!
//! ```text
//! cargo run --release -p sf-bench --bin exp_table1    # Table I
//! cargo run --release -p sf-bench --bin exp_fig3     # Fig. 3(a)+(b)
//! cargo run --release -p sf-bench --bin exp_fig6     # Fig. 6 tables
//! cargo run --release -p sf-bench --bin exp_fig7     # Fig. 7
//! cargo run --release -p sf-bench --bin exp_fig8     # Fig. 8 ablation
//! cargo run --release -p sf-bench --bin exp_fig9     # Fig. 9 qualitative
//! cargo run --release -p sf-bench --bin exp_fault_matrix  # fault injection
//! ```
//!
//! All binaries accept `--quick` for a reduced-scale smoke run (the same
//! path the integration tests exercise).

pub mod experiments;
mod harness;
mod scale;
mod table;

pub use harness::{fmt_duration, BenchHarness, BenchRecord};
pub use scale::ExperimentScale;
pub use table::TextTable;

/// Parses the common experiment CLI flags (`--quick`).
pub fn scale_from_args() -> ExperimentScale {
    if std::env::args().any(|a| a == "--quick") {
        ExperimentScale::Quick
    } else {
        ExperimentScale::Full
    }
}
