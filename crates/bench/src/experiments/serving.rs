//! Serving-throughput sweep — batch size × client count for the
//! `sf-serve` dynamic batcher.
//!
//! The paper's efficiency argument (fusion filters cut FLOPs so DCNN
//! fusion fits deployment budgets) ends at the model; this experiment
//! measures the serving layer on top: closed-loop clients drive one
//! [`Server`] per grid cell and we record sustained throughput, tail
//! latency and mean batch occupancy. A separate correctness probe feeds
//! identical frames through a batch=1 and a batched server and reports
//! the largest per-request probability deviation (the dynamic batcher is
//! bit-identical, so the expected deviation is exactly zero).

use std::sync::Arc;
use std::time::{Duration, Instant};

use sf_core::{FusionNet, FusionScheme};
use sf_serve::{Backpressure, Request, ServeConfig, Server};
use sf_tensor::{Tensor, TensorRng};

use crate::{ExperimentScale, TextTable};

/// One (batch size, client count) measurement.
#[derive(Debug, Clone)]
pub struct ServingCell {
    /// Batcher `max_batch` for this cell.
    pub max_batch: usize,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Sustained throughput over the timed window, requests per second.
    pub throughput_rps: f64,
    /// Median request latency in milliseconds.
    pub latency_p50_ms: f64,
    /// 95th-percentile request latency in milliseconds.
    pub latency_p95_ms: f64,
    /// Mean number of requests fused per forward pass.
    pub mean_occupancy: f64,
    /// Requests completed (sanity: clients × requests-per-client).
    pub completed: u64,
}

/// The full sweep plus the batched-vs-unbatched correctness probe.
#[derive(Debug, Clone)]
pub struct ServingResult {
    /// Batch sizes swept (table rows).
    pub batch_sizes: Vec<usize>,
    /// Client counts swept (table columns).
    pub client_counts: Vec<usize>,
    /// Row-major grid, batch-major then client order.
    pub cells: Vec<ServingCell>,
    /// Largest |p_batched − p_unbatched| over the probe frames; the
    /// acceptance bar for "equal correctness" is 1e-6 and the batcher is
    /// designed to deliver exactly 0.0.
    pub correctness_max_delta: f32,
}

impl ServingResult {
    /// The measured cell for a grid point.
    pub fn cell(&self, max_batch: usize, clients: usize) -> Option<&ServingCell> {
        self.cells
            .iter()
            .find(|c| c.max_batch == max_batch && c.clients == clients)
    }

    /// Throughput of batched serving relative to `max_batch = 1` at the
    /// same client count.
    pub fn speedup(&self, max_batch: usize, clients: usize) -> Option<f64> {
        let base = self.cell(1, clients)?.throughput_rps;
        Some(self.cell(max_batch, clients)?.throughput_rps / base.max(1e-9))
    }
}

/// Sweep grid for a scale: (batch sizes, client counts, requests/client).
fn grid(scale: ExperimentScale) -> (Vec<usize>, Vec<usize>, usize) {
    match scale {
        ExperimentScale::Full => (vec![1, 2, 4, 8, 16], vec![1, 4, 16], 32),
        ExperimentScale::Quick => (vec![1, 4], vec![1, 4], 6),
    }
}

/// Runs the sweep on a freshly initialised AllFilter_U network (serving
/// throughput does not depend on the weights being trained).
pub fn run(scale: ExperimentScale) -> ServingResult {
    let config = scale.network_config();
    let (batch_sizes, client_counts, requests) = grid(scale);
    let mut cells = Vec::new();
    for &max_batch in &batch_sizes {
        for &clients in &client_counts {
            let net = FusionNet::new(FusionScheme::AllFilterU, &config).expect("valid config");
            cells.push(measure_cell(net, &config, max_batch, clients, requests));
        }
    }
    let net = || FusionNet::new(FusionScheme::AllFilterU, &config).expect("valid config");
    let probe_batch = *batch_sizes.iter().max().expect("non-empty grid");
    let correctness_max_delta = correctness_probe(net(), net(), &config, probe_batch);
    ServingResult {
        batch_sizes,
        client_counts,
        cells,
        correctness_max_delta,
    }
}

/// Serve configuration shared by every cell except `max_batch`.
fn serve_config(max_batch: usize) -> ServeConfig {
    ServeConfig::builder()
        .max_batch(max_batch)
        .max_wait(Duration::from_millis(2))
        .queue_capacity(64.max(2 * max_batch))
        .backpressure(Backpressure::Block)
        .build()
        .expect("bench serve config is valid")
}

/// Drives one grid cell: `clients` closed-loop threads, inputs generated
/// outside the timed window.
fn measure_cell(
    net: FusionNet,
    config: &sf_core::NetworkConfig,
    max_batch: usize,
    clients: usize,
    requests: usize,
) -> ServingCell {
    let server = Arc::new(Server::start(net, serve_config(max_batch)).expect("serve config"));
    let frames: Vec<Vec<(Tensor, Tensor)>> = (0..clients)
        .map(|client| probe_frames(config, requests, 0xB_E7C4 ^ client as u64))
        .collect();
    let started = Instant::now();
    let workers: Vec<_> = frames
        .into_iter()
        .map(|frames| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                for (rgb, depth) in frames {
                    server
                        .submit(Request::new(rgb, depth))
                        .expect("bench queue accepts")
                        .wait()
                        .expect("bench request served");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("bench client ran to completion");
    }
    let wall = started.elapsed();
    let server = Arc::into_inner(server).expect("all client clones joined");
    let (_net, stats) = server.shutdown();
    ServingCell {
        max_batch,
        clients,
        throughput_rps: stats.completed as f64 / wall.as_secs_f64().max(1e-9),
        latency_p50_ms: stats.latency_p50_ms,
        latency_p95_ms: stats.latency_p95_ms,
        mean_occupancy: stats.mean_batch_occupancy,
        completed: stats.completed,
    }
}

/// Deterministic synthetic frame pairs for one client.
fn probe_frames(config: &sf_core::NetworkConfig, count: usize, seed: u64) -> Vec<(Tensor, Tensor)> {
    let (h, w, dc) = (config.height, config.width, config.depth_channels);
    let mut rng = TensorRng::seed_from(seed);
    (0..count)
        .map(|_| {
            (
                rng.uniform(&[3, h, w], 0.0, 1.0),
                rng.uniform(&[dc, h, w], 0.1, 1.0),
            )
        })
        .collect()
}

/// Feeds the same frames through a `max_batch = 1` server and a batched
/// server (all submitted before any wait, so they genuinely coalesce) and
/// returns the largest per-pixel probability deviation.
fn correctness_probe(
    net_single: FusionNet,
    net_batched: FusionNet,
    config: &sf_core::NetworkConfig,
    max_batch: usize,
) -> f32 {
    let frames = probe_frames(config, max_batch, 0xC0FFEE);
    let single = serve_all(net_single, 1, &frames);
    let batched = serve_all(net_batched, max_batch, &frames);
    single
        .iter()
        .zip(&batched)
        .flat_map(|(a, b)| a.data().iter().zip(b.data().iter()))
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0_f32, f32::max)
}

/// Submits every frame up front, then waits, returning probability maps
/// in submission order.
fn serve_all(net: FusionNet, max_batch: usize, frames: &[(Tensor, Tensor)]) -> Vec<Tensor> {
    let server = Server::start(net, serve_config(max_batch)).expect("serve config");
    let handles: Vec<_> = frames
        .iter()
        .map(|(rgb, depth)| {
            server
                .submit(Request::new(rgb.clone(), depth.clone()))
                .expect("probe queue accepts")
        })
        .collect();
    let probs = handles
        .into_iter()
        .map(|h| h.wait().expect("probe request served").prob)
        .collect();
    server.shutdown();
    probs
}

/// Renders the sweep as a throughput table (req/s, one row per batch
/// size) followed by tail latency and the correctness line.
pub fn render(result: &ServingResult) -> String {
    let mut headers = vec!["max_batch".to_string()];
    headers.extend(
        result
            .client_counts
            .iter()
            .map(|c| format!("{c} client(s) req/s")),
    );
    let mut table = TextTable::new(headers);
    for &mb in &result.batch_sizes {
        let values: Vec<f64> = result
            .client_counts
            .iter()
            .map(|&c| result.cell(mb, c).map_or(0.0, |cell| cell.throughput_rps))
            .collect();
        table.add_numeric_row(format!("{mb}"), &values, false);
    }
    let mut out = String::from("Serving throughput — dynamic batching sweep (AllFilter_U)\n");
    out.push_str(&table.render());
    let busiest = *result.client_counts.iter().max().unwrap_or(&1);
    for &mb in &result.batch_sizes {
        if let (Some(cell), Some(speedup)) = (result.cell(mb, busiest), result.speedup(mb, busiest))
        {
            out.push_str(&format!(
                "batch {mb:>2} @ {busiest} clients: occupancy {:.2}, p50 {:.2} ms, p95 {:.2} ms, \
                 {:.2}x vs batch=1\n",
                cell.mean_occupancy, cell.latency_p50_ms, cell.latency_p95_ms, speedup
            ));
        }
    }
    out.push_str(&format!(
        "correctness  : max |batched − unbatched| probability delta = {:.1e} (bar: 1e-6)\n",
        result.correctness_max_delta
    ));
    out
}
