//! Beyond-paper: a quantitative version of the paper's robustness claim.
//!
//! Fig. 9 argues *qualitatively* that the fused model survives adverse
//! lighting. This experiment measures it: one fusion model is trained on
//! the standard mixed-lighting set, then the *same test scenes* are
//! re-rendered under every lighting preset and evaluated — once with the
//! full sensor suite and once with the depth input zeroed (camera-only).
//! The gap between those two rows is the value of the LiDAR branch, per
//! condition.

use sf_core::{evaluate, EvalOptions, FusionScheme};
use sf_dataset::{Sample, SegmentationEval};
use sf_scene::Lighting;
use sf_tensor::Tensor;

use crate::experiments::Bundle;
use crate::{ExperimentScale, TextTable};

/// One lighting condition's evaluations.
#[derive(Debug, Clone, PartialEq)]
pub struct ConditionRow {
    /// Lighting preset name.
    pub lighting: &'static str,
    /// Pooled BEV evaluation with RGB + depth.
    pub fused: SegmentationEval,
    /// Pooled BEV evaluation with the depth input zeroed.
    pub camera_only: SegmentationEval,
}

impl ConditionRow {
    /// F-score points the LiDAR branch contributes in this condition.
    pub fn lidar_margin(&self) -> f64 {
        self.fused.f_score - self.camera_only.f_score
    }
}

/// The robustness matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessResult {
    /// One row per lighting preset, in [`Lighting::presets`] order.
    pub rows: Vec<ConditionRow>,
}

impl RobustnessResult {
    /// Looks up a condition row by preset name.
    pub fn row(&self, lighting: &str) -> Option<&ConditionRow> {
        self.rows.iter().find(|r| r.lighting == lighting)
    }
}

/// Trains one AllFilter_U model, then evaluates the same test scenes
/// under every lighting preset with and without the depth input.
pub fn run(scale: ExperimentScale) -> RobustnessResult {
    let bundle = Bundle::new(scale);
    let alpha = scale.train_config().alpha;
    let (net, _) = bundle.train_scheme(FusionScheme::AllFilterU, alpha);
    let camera = bundle.data.config().camera();
    let options = EvalOptions::default();
    let test = bundle.data.test(None);
    // Sweep cells are keyed by preset *name* and resolved through
    // `Lighting::by_name`, so a reordered or extended presets list can
    // never silently remap a row onto the wrong condition.
    let rows = ["day", "night", "overexposed", "shadows"]
        .into_iter()
        .map(|name| {
            let lighting = Lighting::by_name(name).expect("preset names stay in sync");
            // Re-render the identical scenes (same seeds) under this
            // lighting; LiDAR depth and ground truth are unchanged by
            // construction.
            let relit: Vec<Sample> = test
                .iter()
                .map(|s| Sample::render(s.category, s.seed, name, lighting, &camera))
                .collect();
            let refs: Vec<&Sample> = relit.iter().collect();
            let fused = evaluate(&net, &refs, &camera, &options);
            let blind: Vec<Sample> = relit
                .iter()
                .map(|s| Sample {
                    depth: Tensor::zeros(s.depth.shape()),
                    ..s.clone()
                })
                .collect();
            let blind_refs: Vec<&Sample> = blind.iter().collect();
            let camera_only = evaluate(&net, &blind_refs, &camera, &options);
            ConditionRow {
                lighting: name,
                fused,
                camera_only,
            }
        })
        .collect();
    RobustnessResult { rows }
}

/// Renders the robustness matrix.
pub fn render(result: &RobustnessResult) -> String {
    let mut t = TextTable::new(vec!["Lighting", "fused F", "camera-only F", "LiDAR margin"]);
    for row in &result.rows {
        t.add_row(vec![
            row.lighting.to_string(),
            format!("{:.2}", row.fused.f_score),
            format!("{:.2}", row.camera_only.f_score),
            format!("{:+.2}", row.lidar_margin()),
        ]);
    }
    format!(
        "Robustness — BEV F-score per lighting condition (one AllFilter_U model)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_all_presets() {
        let result = run(ExperimentScale::Quick);
        assert_eq!(result.rows.len(), 4);
        for row in &result.rows {
            assert!(row.fused.f_score > 0.0);
            assert!((0.0..=100.0).contains(&row.camera_only.f_score));
        }
        assert!(result.row("night").is_some());
        let text = render(&result);
        assert!(text.contains("LiDAR margin"));
        assert!(text.contains("overexposed"));
    }
}
