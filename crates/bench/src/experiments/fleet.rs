//! Fleet resilience sweep — replica count × dispatch policy × kill
//! schedule for the `sf-serve` replica fleet under the seeded
//! `sf-chaos` fleet harness.
//!
//! Each grid cell drives a live [`Fleet`](sf_serve::Fleet) through one
//! deterministic scene schedule (twice, comparing fingerprints) and
//! records where every routing leg terminated. The schedules escalate:
//! `none` is healthy traffic plus a shadow deploy of a bit-identical
//! candidate; `kill` parks the executors, floods the queues, kills a
//! replica mid-storm and revives it; `kill+swap` additionally hot-swaps
//! a retrained model while the storm is still in flight.
//!
//! The headline claims this table backs:
//! - **fleet conservation** — in every cell, submitted legs = completed +
//!   rejected + expired + failed + redirected, and the router's counters
//!   reconcile with the per-replica servers (the harness fails the run
//!   otherwise);
//! - **zero deploy casualties** — no leg terminally fails in any cell,
//!   including the ones that hot-swap the model mid-storm;
//! - **determinism** — every cell replays to a bit-identical fleet
//!   ledger, for both dispatch policies and all replica counts;
//! - **shadow fidelity** — shadow deploys of a bit-identical candidate
//!   diff exactly 0.0 and promote.

use sf_chaos::{parse_fleet_scenes, FleetChaosConfig, FleetChaosError, FleetChaosReport};
use sf_serve::DispatchPolicy;

use crate::{ExperimentScale, TextTable};

/// The fault schedule swept along the third grid axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillSchedule {
    /// Healthy traffic plus a shadow deploy; no replica dies.
    None,
    /// A mid-stream kill storm followed by an explicit revival.
    Kill,
    /// A kill storm with a retrained-model hot swap in flight, then a
    /// revival and a shadow deploy.
    KillDeploy,
}

impl KillSchedule {
    /// All schedules, sweep order.
    pub const ALL: [KillSchedule; 3] = [
        KillSchedule::None,
        KillSchedule::Kill,
        KillSchedule::KillDeploy,
    ];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            KillSchedule::None => "none",
            KillSchedule::Kill => "kill",
            KillSchedule::KillDeploy => "kill+swap",
        }
    }

    /// Whether the schedule kills a replica (needs a survivor, so these
    /// cells are skipped at `replicas = 1`).
    pub fn kills(self) -> bool {
        !matches!(self, KillSchedule::None)
    }

    /// The scene spec for this schedule at a scale.
    fn scenes(self, scale: ExperimentScale) -> &'static str {
        match (self, scale) {
            (KillSchedule::None, ExperimentScale::Full) => "calm:6,shadow:4,calm:2",
            (KillSchedule::None, ExperimentScale::Quick) => "calm:3,shadow:2",
            (KillSchedule::Kill, ExperimentScale::Full) => "calm:4,storm:4,revive:2,calm:2",
            (KillSchedule::Kill, ExperimentScale::Quick) => "calm:2,storm:2,revive:1,calm:1",
            (KillSchedule::KillDeploy, ExperimentScale::Full) => {
                "calm:4,deploystorm:4,revive:2,shadow:4,calm:2"
            }
            (KillSchedule::KillDeploy, ExperimentScale::Quick) => {
                "calm:2,deploystorm:2,revive:1,shadow:2"
            }
        }
    }
}

/// One (replicas, dispatch, schedule) measurement.
#[derive(Debug, Clone)]
pub struct FleetCell {
    /// Fleet size for this cell.
    pub replicas: usize,
    /// Routing policy under test.
    pub dispatch: DispatchPolicy,
    /// Fault schedule driven through the fleet.
    pub schedule: KillSchedule,
    /// The first run's full report (fleet ledger, kills, revives).
    pub report: FleetChaosReport,
    /// Whether a second run of the identical config produced the same
    /// fleet-ledger fingerprint.
    pub reproducible: bool,
}

/// The full sweep grid and its per-cell reports.
#[derive(Debug, Clone)]
pub struct FleetSweepResult {
    /// Replica counts swept.
    pub replica_counts: Vec<usize>,
    /// Dispatch policies swept.
    pub dispatches: Vec<DispatchPolicy>,
    /// Kill schedules swept.
    pub schedules: Vec<KillSchedule>,
    /// One cell per *valid* grid point (kill schedules need ≥ 2
    /// replicas, so single-replica rows only carry `none`).
    pub cells: Vec<FleetCell>,
}

impl FleetSweepResult {
    /// The measured cell for a grid point.
    pub fn cell(
        &self,
        replicas: usize,
        dispatch: DispatchPolicy,
        schedule: KillSchedule,
    ) -> Option<&FleetCell> {
        self.cells
            .iter()
            .find(|c| c.replicas == replicas && c.dispatch == dispatch && c.schedule == schedule)
    }

    /// How many cells replayed bit-identically.
    pub fn reproducible_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.reproducible).count()
    }

    /// Cells whose schedule hot-swapped or shadow-deployed a model; the
    /// zero-casualty claim quantifies over these.
    pub fn deploy_cells(&self) -> impl Iterator<Item = &FleetCell> {
        self.cells.iter().filter(|c| c.report.stats.deploys > 0)
    }
}

/// Sweep grid for a scale: (replica counts, dispatch policies,
/// schedules).
fn grid(scale: ExperimentScale) -> (Vec<usize>, Vec<DispatchPolicy>, Vec<KillSchedule>) {
    let dispatches = vec![
        DispatchPolicy::ConsistentHash,
        DispatchPolicy::LeastOutstanding,
    ];
    match scale {
        ExperimentScale::Full => (vec![1, 2, 4], dispatches, KillSchedule::ALL.to_vec()),
        ExperimentScale::Quick => (
            vec![2],
            dispatches,
            vec![KillSchedule::None, KillSchedule::KillDeploy],
        ),
    }
}

/// Runs one grid cell twice and compares fleet-ledger fingerprints.
///
/// # Errors
///
/// Returns the harness error if either run breaks fleet conservation,
/// the router-vs-replica cross-check, or the zero-deploy-casualty
/// promise — an experiment-ending finding, not a data point.
fn measure_cell(
    replicas: usize,
    dispatch: DispatchPolicy,
    schedule: KillSchedule,
    scale: ExperimentScale,
) -> Result<FleetCell, FleetChaosError> {
    let seed = 0xF1EE_0B5E
        ^ ((replicas as u64) << 16)
        ^ (u64::from(dispatch == DispatchPolicy::LeastOutstanding) << 8)
        ^ schedule.label().len() as u64;
    let config = FleetChaosConfig::default()
        .with_seed(seed)
        .with_replicas(replicas)
        .with_dispatch(dispatch)
        .with_scenes(parse_fleet_scenes(schedule.scenes(scale)).expect("sweep scene spec parses"));
    let first = sf_chaos::run_fleet(&config)?;
    let second = sf_chaos::run_fleet(&config)?;
    let reproducible = first.fingerprint() == second.fingerprint();
    Ok(FleetCell {
        replicas,
        dispatch,
        schedule,
        report: first,
        reproducible,
    })
}

/// Runs the sweep. Panics if any cell violates a fleet invariant (lost
/// leg, reconciliation mismatch, deploy casualty, nonzero shadow diff)
/// — those are correctness failures, not measurements.
pub fn run(scale: ExperimentScale) -> FleetSweepResult {
    let (replica_counts, dispatches, schedules) = grid(scale);
    let mut cells = Vec::new();
    for &replicas in &replica_counts {
        for &dispatch in &dispatches {
            for &schedule in &schedules {
                if schedule.kills() && replicas < 2 {
                    continue;
                }
                let cell = measure_cell(replicas, dispatch, schedule, scale).unwrap_or_else(|e| {
                    panic!(
                        "fleet cell ({replicas} replicas, {} dispatch, {} schedule) \
                         violated a fleet invariant: {e}",
                        dispatch.label(),
                        schedule.label()
                    )
                });
                cells.push(cell);
            }
        }
    }
    FleetSweepResult {
        replica_counts,
        dispatches,
        schedules,
        cells,
    }
}

/// Renders the sweep as one row per cell plus the invariant summary.
pub fn render(result: &FleetSweepResult) -> String {
    let mut table = TextTable::new(vec![
        "replicas", "dispatch", "schedule", "legs", "done", "redir", "failed", "kills", "revives",
        "promos", "shadow", "repro",
    ]);
    for cell in &result.cells {
        let s = &cell.report.stats;
        table.add_row(vec![
            cell.replicas.to_string(),
            cell.dispatch.label().to_string(),
            cell.schedule.label().to_string(),
            s.submitted.to_string(),
            s.completed.to_string(),
            s.redirected.to_string(),
            s.failed.to_string(),
            cell.report.kills.to_string(),
            cell.report.revives.to_string(),
            s.promotions.to_string(),
            if s.shadow_samples > 0 {
                format!("{:.1}", s.shadow_max_delta)
            } else {
                "-".to_string()
            },
            if cell.reproducible { "yes" } else { "VARIED" }.to_string(),
        ]);
    }
    let mut out =
        String::from("Fleet resilience — replica count x dispatch policy x kill schedule\n");
    out.push_str(&table.render());
    out.push_str(&format!(
        "conservation : submitted legs = completed + rejected + expired + failed \
         + redirected held in all {} cells, router/replica reconciled (the harness \
         fails otherwise)\n",
        result.cells.len()
    ));
    let deploy_cells = result.deploy_cells().count();
    let deploy_failed: u64 = result.deploy_cells().map(|c| c.report.stats.failed).sum();
    out.push_str(&format!(
        "hot swap     : {deploy_failed} failed legs across {deploy_cells} deploy cells \
         (zero-downtime: every mid-storm swap landed without a casualty)\n"
    ));
    out.push_str(&format!(
        "reproducible : {}/{} cells replayed to bit-identical fleet ledgers\n",
        result.reproducible_cells(),
        result.cells.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_sweep_schedule_validates_against_its_fleet() {
        for scale in [ExperimentScale::Quick, ExperimentScale::Full] {
            let (replica_counts, dispatches, schedules) = grid(scale);
            for &replicas in &replica_counts {
                for &dispatch in &dispatches {
                    for &schedule in &schedules {
                        if schedule.kills() && replicas < 2 {
                            continue;
                        }
                        let config = FleetChaosConfig::default()
                            .with_replicas(replicas)
                            .with_dispatch(dispatch)
                            .with_scenes(
                                parse_fleet_scenes(schedule.scenes(scale)).expect("spec parses"),
                            );
                        config.validate().unwrap_or_else(|e| {
                            panic!(
                                "sweep cell ({replicas}, {}, {}) invalid: {e}",
                                dispatch.label(),
                                schedule.label()
                            )
                        });
                    }
                }
            }
        }
    }

    #[test]
    fn schedule_labels_are_distinct() {
        let labels: Vec<_> = KillSchedule::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["none", "kill", "kill+swap"]);
        assert!(!KillSchedule::None.kills());
        assert!(KillSchedule::KillDeploy.kills());
    }
}
