//! Fig. 8 — ablation of the Feature Disparity loss: Baseline,
//! AllFilter_U and BaseSharing trained with and without the extra loss
//! term, per road scene. Optionally sweeps α beyond the paper's
//! {0, 0.3}.

use sf_core::FusionScheme;
use sf_scene::RoadCategory;

use crate::experiments::Bundle;
use crate::{ExperimentScale, TextTable};

/// F-scores of one (architecture, α) training across the categories.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Architecture trained.
    pub scheme: FusionScheme,
    /// Feature-Disparity loss weight used.
    pub alpha: f32,
    /// BEV F-score per category, in UM/UMM/UU order.
    pub f_scores: Vec<f64>,
}

impl AblationRow {
    /// The paper's bar label: architecture name, `+loss` suffix when the
    /// FD loss was on.
    pub fn label(&self) -> String {
        if self.alpha > 0.0 {
            format!("{}+loss", self.scheme.abbrev())
        } else {
            self.scheme.abbrev().to_string()
        }
    }

    /// F-score for one category.
    pub fn f_for(&self, category: RoadCategory) -> f64 {
        let idx = RoadCategory::ALL
            .iter()
            .position(|c| *c == category)
            .expect("category exists");
        self.f_scores[idx]
    }
}

/// The Fig. 8 ablation grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Result {
    /// One row per (architecture, α) combination.
    pub rows: Vec<AblationRow>,
}

impl Fig8Result {
    /// Finds a row by scheme and α.
    pub fn row(&self, scheme: FusionScheme, alpha: f32) -> Option<&AblationRow> {
        self.rows
            .iter()
            .find(|r| r.scheme == scheme && (r.alpha - alpha).abs() < 1e-6)
    }
}

/// The architectures the paper ablates.
pub const ABLATED: [FusionScheme; 3] = [
    FusionScheme::Baseline,
    FusionScheme::AllFilterU,
    FusionScheme::BaseSharing,
];

/// Runs the ablation. `alphas` defaults to the paper's `{0, 0.3}` when
/// empty; pass more values for the extended sweep.
pub fn run(scale: ExperimentScale, alphas: &[f32]) -> Fig8Result {
    let bundle = Bundle::new(scale);
    let alphas: Vec<f32> = if alphas.is_empty() {
        vec![0.0, scale.train_config().alpha]
    } else {
        alphas.to_vec()
    };
    let mut rows = Vec::new();
    for scheme in ABLATED {
        for &alpha in &alphas {
            let (mut net, _) = bundle.train_scheme(scheme, alpha);
            let f_scores = RoadCategory::ALL
                .into_iter()
                .map(|c| bundle.eval_category(&mut net, c).f_score)
                .collect();
            rows.push(AblationRow {
                scheme,
                alpha,
                f_scores,
            });
        }
    }
    Fig8Result { rows }
}

/// Renders the ablation as a table (rows = model±loss, columns = scene).
pub fn render(result: &Fig8Result) -> String {
    let mut headers = vec!["Model".to_string(), "alpha".to_string()];
    headers.extend(RoadCategory::ALL.iter().map(|c| c.code().to_string()));
    let mut t = TextTable::new(headers);
    for row in &result.rows {
        let mut cells = vec![row.label(), format!("{:.2}", row.alpha)];
        cells.extend(row.f_scores.iter().map(|f| format!("{f:.2}")));
        t.add_row(cells);
    }
    format!(
        "Fig. 8 — Feature Disparity loss ablation (BEV F-score)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_ablation_has_all_rows() {
        let result = run(ExperimentScale::Quick, &[]);
        assert_eq!(result.rows.len(), 6);
        for scheme in ABLATED {
            assert!(result.row(scheme, 0.0).is_some());
        }
        let text = render(&result);
        assert!(text.contains("Baseline+loss") || text.contains("Baseline"));
        assert!(text.contains("UM"));
    }

    #[test]
    fn custom_alpha_sweep_is_respected() {
        let result = run(ExperimentScale::Quick, &[0.0, 0.1]);
        assert_eq!(result.rows.len(), 6);
        assert!(result.row(FusionScheme::Baseline, 0.1).is_some());
        assert!(result.row(FusionScheme::Baseline, 0.3).is_none());
    }
}
