//! Fig. 7 — accuracy vs computational cost (MACs and parameters) for
//! every architecture, plus the sharing-depth ablation the design calls
//! out.

use sf_core::{FusionNet, FusionScheme};
use sf_nn::Cost;

use crate::experiments::Bundle;
use crate::{ExperimentScale, TextTable};

/// One architecture's position in the accuracy/cost space.
#[derive(Debug, Clone, PartialEq)]
pub struct CostPoint {
    /// Architecture label (scheme abbreviation, possibly with a sharing
    /// depth suffix for ablation rows).
    pub label: String,
    /// Analytic per-image cost.
    pub cost: Cost,
    /// Pooled BEV F-score over the whole test split.
    pub f_score: f64,
}

/// The Fig. 7 scatter data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Result {
    /// One point per architecture (plus ablation points when requested).
    pub points: Vec<CostPoint>,
}

impl Fig7Result {
    /// Looks up a point by label.
    pub fn point(&self, label: &str) -> Option<&CostPoint> {
        self.points.iter().find(|p| p.label == label)
    }
}

/// Trains and evaluates all five schemes, recording their analytic cost.
/// With `sweep_share` set, additionally ablates BaseSharing with deeper
/// sharing (last 2, 3, … stages).
pub fn run(scale: ExperimentScale, sweep_share: bool) -> Fig7Result {
    let bundle = Bundle::new(scale);
    let alpha = scale.train_config().alpha;
    let mut points = Vec::new();
    for scheme in FusionScheme::ALL {
        let (mut net, _) = bundle.train_scheme(scheme, alpha);
        points.push(CostPoint {
            label: scheme.abbrev().to_string(),
            cost: net.cost(),
            f_score: bundle.eval_all(&mut net).f_score,
        });
    }
    if sweep_share {
        let base_config = scale.network_config();
        for k in 2..base_config.stages() {
            let mut config = base_config.clone();
            config.shared_stages = k;
            let mut net = FusionNet::new(FusionScheme::BaseSharing, &config).expect("valid config");
            let train_cfg = scale.train_config().with_alpha(alpha);
            let samples = bundle.data.train(None);
            sf_core::train(&mut net, &samples, &train_cfg);
            points.push(CostPoint {
                label: format!("BS(share {k})"),
                cost: net.cost(),
                f_score: bundle.eval_all(&mut net).f_score,
            });
        }
    }
    Fig7Result { points }
}

/// Renders the accuracy/cost table.
pub fn render(result: &Fig7Result) -> String {
    let mut t = TextTable::new(vec!["Model", "F-score", "MMACs", "kParams"]);
    for p in &result.points {
        t.add_row(vec![
            p.label.clone(),
            format!("{:.2}", p.f_score),
            format!("{:.3}", p.cost.mmacs()),
            format!("{:.2}", p.cost.kparams()),
        ]);
    }
    format!(
        "Fig. 7 — accuracy vs computational cost (one forward pass per image)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_ordering_matches_paper() {
        // Cost ordering is architecture-determined, so even a quick run
        // must reproduce the paper's Fig. 7 layout: filters add cost,
        // sharing removes parameters.
        let result = run(ExperimentScale::Quick, false);
        assert_eq!(result.points.len(), 5);
        let params = |l: &str| result.point(l).unwrap().cost.params;
        let macs = |l: &str| result.point(l).unwrap().cost.macs;
        assert!(params("AB") > params("AU"));
        assert!(params("AU") > params("Baseline"));
        assert!(params("Baseline") > params("WS"));
        assert!(params("WS") > params("BS"));
        assert!(macs("AU") > macs("Baseline"));
        assert_eq!(macs("BS"), macs("Baseline"));
    }

    #[test]
    fn share_sweep_adds_points_with_fewer_params() {
        let result = run(ExperimentScale::Quick, true);
        let bs1 = result.point("BS").unwrap().cost.params;
        let bs2 = result.point("BS(share 2)").unwrap().cost.params;
        assert!(bs2 < bs1, "sharing more stages must remove parameters");
        let text = render(&result);
        assert!(text.contains("BS(share 2)"));
    }
}
