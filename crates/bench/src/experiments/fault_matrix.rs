//! Beyond-paper: the sensor-fault / graceful-degradation matrix.
//!
//! One fusion model is trained on clean data, then its test scenes are
//! corrupted by every [`SensorFault`] kind at several severities. Each
//! cell is evaluated twice: trusting the broken depth sensor (`fused`)
//! and under [`DegradationPolicy::CameraFallback`] (`degraded`), which
//! quarantines unhealthy depth inputs and routes them through the
//! camera-only path. The explicit camera-only evaluation on clean scenes
//! is the floor the fallback should land on when a fault kills the
//! sensor outright.

use sf_core::{evaluate, evaluate_with_report, DegradationPolicy, EvalOptions, FusionScheme};
use sf_dataset::{FaultInjector, Sample, SegmentationEval, SensorFault};

use crate::experiments::Bundle;
use crate::{ExperimentScale, TextTable};

/// Injector seed: fixed so the matrix is reproducible run to run.
const FAULT_SEED: u64 = 0xFA11;

/// The fault severities (probability / sigma / shift scale) the matrix
/// sweeps.
pub const SEVERITIES: [f64; 2] = [0.5, 1.0];

/// One fault × severity cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCell {
    /// The injected fault (parameters encode the severity).
    pub fault: SensorFault,
    /// Severity the fault was derived from.
    pub severity: f64,
    /// Pooled BEV evaluation fusing the corrupted depth (policy
    /// `trust`).
    pub fused: SegmentationEval,
    /// Pooled BEV evaluation under the `fallback` degradation policy.
    pub degraded: SegmentationEval,
    /// Depth inputs the fallback policy quarantined.
    pub quarantined: usize,
}

/// The full fault matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultMatrixResult {
    /// Clean-sensor evaluation (no fault, full fusion).
    pub clean: SegmentationEval,
    /// Explicit camera-only evaluation on the clean scenes — the
    /// degradation floor.
    pub camera_only: SegmentationEval,
    /// One cell per severity × fault kind.
    pub cells: Vec<FaultCell>,
}

impl FaultMatrixResult {
    /// Looks up a cell by its fault.
    pub fn cell(&self, fault: SensorFault) -> Option<&FaultCell> {
        self.cells.iter().find(|c| c.fault == fault)
    }
}

/// Trains one AllFilter_U model on clean data and sweeps the fault
/// matrix over its test scenes.
pub fn run(scale: ExperimentScale) -> FaultMatrixResult {
    let bundle = Bundle::new(scale);
    let alpha = scale.train_config().alpha;
    let (net, _) = bundle.train_scheme(FusionScheme::AllFilterU, alpha);
    let camera = bundle.data.config().camera();
    let test = bundle.data.test(None);

    let trust = EvalOptions::default();
    let fallback = EvalOptions::default().with_policy(DegradationPolicy::CameraFallback);
    let camera_only_options = EvalOptions::default().with_policy(DegradationPolicy::CameraOnly);

    let clean = evaluate(&net, &test, &camera, &trust);
    let camera_only = evaluate(&net, &test, &camera, &camera_only_options);

    let mut cells = Vec::new();
    for &severity in &SEVERITIES {
        for fault in SensorFault::matrix_faults(severity) {
            let mut injector = FaultInjector::new(fault, FAULT_SEED);
            let corrupted: Vec<Sample> = test.iter().map(|s| injector.corrupt_sample(s)).collect();
            let refs: Vec<&Sample> = corrupted.iter().collect();
            let fused = evaluate(&net, &refs, &camera, &trust);
            let (degraded, report) = evaluate_with_report(&net, &refs, &camera, &fallback);
            cells.push(FaultCell {
                fault,
                severity,
                fused,
                degraded,
                quarantined: report.quarantined_count(),
            });
        }
    }
    FaultMatrixResult {
        clean,
        camera_only,
        cells,
    }
}

/// Renders the fault matrix.
pub fn render(result: &FaultMatrixResult) -> String {
    let mut t = TextTable::new(vec!["Fault", "fused F", "degraded F", "quarantined"]);
    t.add_row(vec![
        "(clean)".to_string(),
        format!("{:.2}", result.clean.f_score),
        format!("{:.2}", result.camera_only.f_score),
        "0".to_string(),
    ]);
    for cell in &result.cells {
        t.add_row(vec![
            cell.fault.to_string(),
            format!("{:.2}", cell.fused.f_score),
            format!("{:.2}", cell.degraded.f_score),
            cell.quarantined.to_string(),
        ]);
    }
    format!(
        "Fault matrix — BEV F-score fusing the broken sensor vs the fallback \
         degradation policy\n(clean row: full fusion vs explicit camera-only)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_covers_all_faults_and_fallback_matches_camera_only() {
        let result = run(ExperimentScale::Quick);
        assert_eq!(result.cells.len(), SEVERITIES.len() * 6);
        for cell in &result.cells {
            assert!((0.0..=100.0).contains(&cell.fused.f_score), "{cell:?}");
            assert!((0.0..=100.0).contains(&cell.degraded.f_score), "{cell:?}");
        }
        // Acceptance criterion: with depth fully dropped, the fallback
        // policy quarantines every frame and lands exactly on the
        // explicit camera-only evaluation.
        let dead = result
            .cell(SensorFault::DepthDropout { p: 1.0 })
            .expect("full dropout cell present");
        assert!(
            (dead.degraded.f_score - result.camera_only.f_score).abs() < 1e-6,
            "degraded {} vs camera-only {}",
            dead.degraded.f_score,
            result.camera_only.f_score
        );
        assert!(dead.quarantined > 0, "dead sensor must be quarantined");
        let text = render(&result);
        assert!(text.contains("depth-dropout:1"), "{text}");
        assert!(text.contains("(clean)"), "{text}");
    }
}
