//! Beyond-paper ablation: inverse-depth vs SNE surface-normal input
//! encoding for the depth branch.
//!
//! The paper's baseline descends from SNE-RoadSeg, whose signature step
//! feeds *surface normals estimated from depth* to the second branch
//! rather than the raw depth image. This experiment quantifies that
//! choice inside our reproduction: the Baseline fusion architecture is
//! trained once per encoding and evaluated per road scene.

use sf_core::{evaluate, train, EvalOptions, FusionNet, FusionScheme};
use sf_dataset::{RoadDataset, Sample, SegmentationEval};
use sf_scene::{LidarSpec, RoadCategory};

use crate::{ExperimentScale, TextTable};

/// The encoding comparison result.
#[derive(Debug, Clone, PartialEq)]
pub struct SneResult {
    /// Per-category evaluation with the inverse-depth encoding.
    pub inverse_depth: Vec<(RoadCategory, SegmentationEval)>,
    /// Per-category evaluation with the SNE surface-normal encoding.
    pub surface_normals: Vec<(RoadCategory, SegmentationEval)>,
}

impl SneResult {
    /// Mean F-score across categories for each encoding:
    /// `(inverse_depth, surface_normals)`.
    pub fn mean_f(&self) -> (f64, f64) {
        let mean = |rows: &[(RoadCategory, SegmentationEval)]| {
            rows.iter().map(|(_, e)| e.f_score).sum::<f64>() / rows.len().max(1) as f64
        };
        (mean(&self.inverse_depth), mean(&self.surface_normals))
    }
}

/// Trains Baseline models with both depth encodings and evaluates them.
pub fn run(scale: ExperimentScale) -> SneResult {
    let dataset_config = scale.dataset_config();
    let data = RoadDataset::generate(&dataset_config);
    let camera = dataset_config.camera();
    let train_config = scale.train_config();
    let max_range = LidarSpec::default().max_range;

    let run_encoding = |normals: bool| -> Vec<(RoadCategory, SegmentationEval)> {
        let mut net_config = scale.network_config();
        let transform = |samples: Vec<&Sample>| -> Vec<Sample> {
            samples
                .into_iter()
                .map(|s| {
                    if normals {
                        s.with_surface_normals(&camera, max_range)
                    } else {
                        s.clone()
                    }
                })
                .collect()
        };
        if normals {
            net_config.depth_channels = 3;
        }
        let mut net = FusionNet::new(FusionScheme::Baseline, &net_config).expect("valid config");
        let train_samples = transform(data.train(None));
        let train_refs: Vec<&Sample> = train_samples.iter().collect();
        train(&mut net, &train_refs, &train_config);
        RoadCategory::ALL
            .into_iter()
            .map(|category| {
                let test_samples = transform(data.test(Some(category)));
                let refs: Vec<&Sample> = test_samples.iter().collect();
                (
                    category,
                    evaluate(&net, &refs, &camera, &EvalOptions::default()),
                )
            })
            .collect()
    };

    SneResult {
        inverse_depth: run_encoding(false),
        surface_normals: run_encoding(true),
    }
}

/// Renders the encoding comparison table.
pub fn render(result: &SneResult) -> String {
    let mut headers = vec!["Encoding".to_string()];
    headers.extend(RoadCategory::ALL.iter().map(|c| c.code().to_string()));
    headers.push("mean".to_string());
    let mut t = TextTable::new(headers);
    let (mean_inv, mean_sne) = result.mean_f();
    let row = |label: &str, rows: &[(RoadCategory, SegmentationEval)], mean: f64| {
        let mut cells = vec![label.to_string()];
        cells.extend(rows.iter().map(|(_, e)| format!("{:.2}", e.f_score)));
        cells.push(format!("{mean:.2}"));
        cells
    };
    t.add_row(row("inverse depth", &result.inverse_depth, mean_inv));
    t.add_row(row("SNE normals", &result.surface_normals, mean_sne));
    format!(
        "SNE ablation — depth-branch input encoding (BEV F-score)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_core::NetworkConfig;

    #[test]
    fn quick_run_evaluates_both_encodings() {
        let result = run(ExperimentScale::Quick);
        assert_eq!(result.inverse_depth.len(), 3);
        assert_eq!(result.surface_normals.len(), 3);
        let (a, b) = result.mean_f();
        assert!(a > 0.0 && b > 0.0);
        let text = render(&result);
        assert!(text.contains("SNE normals"));
        assert!(text.contains("inverse depth"));
    }

    /// `NetworkConfig::tiny`-scale check that a 3-channel depth branch
    /// actually trains (shapes, grads, cost accounting).
    #[test]
    fn three_channel_depth_branch_is_well_formed() {
        let mut config = NetworkConfig::tiny();
        config.depth_channels = 3;
        let mut net = FusionNet::new(FusionScheme::Baseline, &config).expect("valid config");
        let cost = net.cost();
        let mut net1 =
            FusionNet::new(FusionScheme::Baseline, &NetworkConfig::tiny()).expect("valid config");
        assert!(cost.params > net1.cost().params);
        use sf_nn::Parameterized;
        assert_eq!(cost.params as usize, net.param_count());
        let _ = net1.param_count();
    }
}
