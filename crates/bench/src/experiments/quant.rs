//! Int8 quantization sweep — calibration-set size × batch size.
//!
//! The paper's efficiency argument is architectural (fusion filters cut
//! MACs); this experiment measures the orthogonal deployment lever:
//! post-training int8 quantization of the compiled plan. For every
//! (calibration frames, batch size) cell we report the int8 model's
//! MaxF/IOU and their deltas against the f32 baseline, sustained
//! single-core throughput of both precisions, and a fingerprint of the
//! int8 output — each cell runs its forward pass twice and the cell is
//! only marked reproducible when both passes produce bit-identical
//! probabilities (i32 accumulation is exactly associative, so they must).

use std::time::Instant;

use sf_core::{
    evaluate_with_predictor, CompiledPlan, EvalOptions, FusionScheme, PlanMode, Predictor,
};
use sf_dataset::{Sample, SegmentationEval};
use sf_quant::calibrate;
use sf_tensor::Tensor;

use crate::experiments::Bundle;
use crate::{ExperimentScale, TextTable};

/// One (calibration size, batch size) measurement.
#[derive(Debug, Clone)]
pub struct QuantCell {
    /// Calibration frames used for the activation scales.
    pub calib: usize,
    /// Images per forward pass in the timed window.
    pub batch: usize,
    /// Int8 MaxF on the pooled test split, ×100.
    pub int8_f: f64,
    /// Int8 − f32 MaxF delta, ×100 (negative = int8 worse).
    pub delta_f: f64,
    /// Int8 IOU on the pooled test split, ×100.
    pub int8_iou: f64,
    /// Int8 − f32 IOU delta, ×100.
    pub delta_iou: f64,
    /// f32 fused-plan throughput, images per second.
    pub f32_ips: f64,
    /// Int8 fused-plan throughput, images per second.
    pub int8_ips: f64,
    /// FNV-1a hash of the int8 output's f32 bit patterns.
    pub fingerprint: u64,
    /// Whether two back-to-back int8 passes were bit-identical.
    pub reproducible: bool,
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct QuantResult {
    /// Calibration sizes swept (outer grid axis).
    pub calib_sizes: Vec<usize>,
    /// Batch sizes swept (inner grid axis).
    pub batch_sizes: Vec<usize>,
    /// f32 baseline on the pooled test split.
    pub f32_eval: SegmentationEval,
    /// Row-major grid, calibration-major then batch order.
    pub cells: Vec<QuantCell>,
    /// f32 fused-plan weight bytes.
    pub f32_weight_bytes: usize,
    /// Int8 fused-plan weight bytes (i8 grids + scale blocks).
    pub int8_weight_bytes: usize,
}

impl QuantResult {
    /// The measured cell for a grid point.
    pub fn cell(&self, calib: usize, batch: usize) -> Option<&QuantCell> {
        self.cells
            .iter()
            .find(|c| c.calib == calib && c.batch == batch)
    }

    /// Weight compression ratio (f32 bytes / int8 bytes).
    pub fn compression(&self) -> f64 {
        self.f32_weight_bytes as f64 / self.int8_weight_bytes.max(1) as f64
    }

    /// The largest-batch cell at the largest calibration size — the cell
    /// the throughput acceptance bar applies to.
    pub fn headline_cell(&self) -> &QuantCell {
        let calib = *self.calib_sizes.iter().max().expect("non-empty grid");
        let batch = *self.batch_sizes.iter().max().expect("non-empty grid");
        self.cell(calib, batch).expect("grid is fully populated")
    }
}

/// Sweep grid for a scale: (calibration sizes, batch sizes, timed reps).
fn grid(scale: ExperimentScale) -> (Vec<usize>, Vec<usize>, usize) {
    match scale {
        ExperimentScale::Full => (vec![1, 4, 16], vec![1, 4, 8], 24),
        ExperimentScale::Quick => (vec![1, 4], vec![1, 2], 2),
    }
}

/// Runs the sweep on a trained AllFilter_U network.
pub fn run(scale: ExperimentScale) -> QuantResult {
    let bundle = Bundle::new(scale);
    let alpha = scale.train_config().alpha;
    let (net, _) = bundle.train_scheme(FusionScheme::AllFilterU, alpha);
    let camera = bundle.data.config().camera();
    let options = EvalOptions::default();
    let test = bundle.data.test(None);
    let train = bundle.data.train(None);

    let (f32_eval, _) = evaluate_with_predictor(Predictor::compile(&net), &test, &camera, &options);
    let mut f32_plan = CompiledPlan::compile(&net, PlanMode::Fused);
    let f32_weight_bytes = f32_plan.weight_bytes();

    let (calib_sizes, batch_sizes, reps) = grid(scale);
    let mut cells = Vec::new();
    let mut int8_weight_bytes = 0;
    for &calib in &calib_sizes {
        let frames: Vec<&Sample> = train.iter().copied().take(calib).collect();
        let profile = calibrate(&net, &frames);
        let predictor = Predictor::compile_int8(&net, &profile)
            .expect("calibration on real frames covers every boundary");
        let (int8_eval, _) = evaluate_with_predictor(predictor, &test, &camera, &options);
        let mut int8_plan = CompiledPlan::compile_int8(&net, &profile, PlanMode::Int8)
            .expect("profile covers the fused plan");
        int8_weight_bytes = int8_plan.weight_bytes();
        for &batch in &batch_sizes {
            let (rgb, depth) = batched_input(&test, batch);
            let f32_ips = time_ips(&mut f32_plan, &rgb, &depth, batch, reps);
            let int8_ips = time_ips(&mut int8_plan, &rgb, &depth, batch, reps);
            let first = fingerprint(
                &int8_plan
                    .run_batch(&rgb, Some(&depth))
                    .expect("valid batch"),
            );
            let second = fingerprint(
                &int8_plan
                    .run_batch(&rgb, Some(&depth))
                    .expect("valid batch"),
            );
            cells.push(QuantCell {
                calib,
                batch,
                int8_f: int8_eval.f_score,
                delta_f: int8_eval.f_score - f32_eval.f_score,
                int8_iou: int8_eval.iou,
                delta_iou: int8_eval.iou - f32_eval.iou,
                f32_ips,
                int8_ips,
                fingerprint: first,
                reproducible: first == second,
            });
        }
    }
    QuantResult {
        calib_sizes,
        batch_sizes,
        f32_eval,
        cells,
        f32_weight_bytes,
        int8_weight_bytes,
    }
}

/// Stacks `n` test frames (cycling if needed) into `[N,C,H,W]` batches.
fn batched_input(samples: &[&Sample], n: usize) -> (Tensor, Tensor) {
    let rgb_shape = samples[0].rgb.shape().to_vec();
    let depth_shape = samples[0].depth.shape().to_vec();
    let mut rgb = Vec::with_capacity(n * samples[0].rgb.numel());
    let mut depth = Vec::with_capacity(n * samples[0].depth.numel());
    for i in 0..n {
        let s = samples[i % samples.len()];
        rgb.extend_from_slice(s.rgb.data());
        depth.extend_from_slice(s.depth.data());
    }
    let mut rs = vec![n];
    rs.extend_from_slice(&rgb_shape);
    let mut ds = vec![n];
    ds.extend_from_slice(&depth_shape);
    (
        Tensor::from_vec(rgb, &rs).expect("stacked rgb shape"),
        Tensor::from_vec(depth, &ds).expect("stacked depth shape"),
    )
}

/// Times `reps` forward passes and returns images per second.
fn time_ips(
    plan: &mut CompiledPlan,
    rgb: &Tensor,
    depth: &Tensor,
    batch: usize,
    reps: usize,
) -> f64 {
    // One warm pass so allocator growth of the scratch arena is not timed.
    plan.run_batch(rgb, Some(depth)).expect("valid batch");
    let started = Instant::now();
    for _ in 0..reps {
        plan.run_batch(rgb, Some(depth)).expect("valid batch");
    }
    (reps * batch) as f64 / started.elapsed().as_secs_f64().max(1e-9)
}

/// FNV-1a over the probability map's exact bit patterns.
fn fingerprint(t: &Tensor) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for v in t.data() {
        for byte in v.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Renders the sweep table plus the weight-compression and
/// reproducibility summary recorded in `results/bench.txt`.
pub fn render(result: &QuantResult) -> String {
    let mut out = String::new();
    out.push_str("Int8 quantization sweep (AllFilter_U, fused plan)\n");
    out.push_str(&format!(
        "weights: {} B f32 -> {} B int8 ({:.2}x smaller)\n",
        result.f32_weight_bytes,
        result.int8_weight_bytes,
        result.compression()
    ));
    out.push_str(&format!(
        "f32 baseline: MaxF {:.2}, IOU {:.2}\n\n",
        result.f32_eval.f_score, result.f32_eval.iou
    ));
    let mut table = TextTable::new(vec![
        "calib",
        "batch",
        "MaxF",
        "dMaxF",
        "IOU",
        "dIOU",
        "f32 img/s",
        "int8 img/s",
        "ratio",
        "fingerprint",
        "repro",
    ]);
    for c in &result.cells {
        table.add_row(vec![
            format!("{}", c.calib),
            format!("{}", c.batch),
            format!("{:.2}", c.int8_f),
            format!("{:+.2}", c.delta_f),
            format!("{:.2}", c.int8_iou),
            format!("{:+.2}", c.delta_iou),
            format!("{:.1}", c.f32_ips),
            format!("{:.1}", c.int8_ips),
            format!("{:.2}x", c.int8_ips / c.f32_ips.max(1e-9)),
            format!("{:016x}", c.fingerprint),
            if c.reproducible { "yes" } else { "NO" }.to_string(),
        ]);
    }
    out.push_str(&table.render());
    let headline = result.headline_cell();
    if headline.int8_ips >= headline.f32_ips {
        out.push_str(&format!(
            "\nnote: int8 is faster than f32 on the largest batch cell \
             (calib {}, batch {}: {:.1} vs {:.1} img/s).\n",
            headline.calib, headline.batch, headline.int8_ips, headline.f32_ips
        ));
    } else {
        out.push_str(&format!(
            "\nnote: int8 trails f32 on the largest batch cell (calib {}, batch {}: \
             {:.1} vs {:.1} img/s). This build runs scalar kernels on a single \
             core with no int8 dot-product hardware, so the i8 matmul moves \
             fewer bytes but retires the same multiply count, and each image \
             pays an extra O(C*H*W) activation-quantize pass; the deploy wins \
             here are the {:.2}x weight compression and the bounded accuracy \
             delta, not wall-clock.\n",
            headline.calib,
            headline.batch,
            headline.int8_ips,
            headline.f32_ips,
            result.compression()
        ));
    }
    out.push_str("MaxF/IOU are calibration-size dependent only; throughput cells share the\n");
    out.push_str("calibration row's scales. Fingerprints hash the int8 probability bits —\n");
    out.push_str("identical across reruns of the same grid cell.\n");
    out
}
