//! Chaos resilience sweep — fault rate × deadline × breaker threshold.
//!
//! The serving experiment measures how fast the batcher goes when
//! everything works; this one measures what the stack *guarantees* when
//! things break. Every grid cell runs one seeded [`sf_chaos`] schedule —
//! depth-sensor corruption at the swept fault rate, a batch slowdown, a
//! stale-request burst and a queue-full storm — against a live server and
//! records where every request terminated, how often the depth-branch
//! circuit breaker tripped, and whether the run is bit-reproducible
//! (each cell executes twice and compares fault-schedule fingerprints).
//!
//! The headline claims this table backs:
//! - **conservation** — in every cell, submitted = completed + rejected +
//!   expired + failed (the harness fails the run otherwise, so a rendered
//!   table is itself the proof);
//! - **determinism** — cells with a deterministic deadline (none, or far
//!   above the injected slowdown) replay to identical fingerprints;
//! - **breaker sensitivity** — the trip threshold separates fault rates:
//!   a strict breaker (0.25) trips on mixed traffic a lax one (0.75)
//!   rides through.

use std::time::Duration;

use sf_chaos::{ChaosConfig, ChaosError, ChaosReport, Scene};
use sf_core::BreakerConfig;
use sf_dataset::SensorFault;

use crate::{ExperimentScale, TextTable};

/// Injected per-batch delay during the slowdown scene, milliseconds.
/// Deadlines below this expire the slowed requests; deadlines above it
/// (or no deadline) let them complete.
const SLOWDOWN_MS: u64 = 60;

/// One (fault rate, deadline, breaker threshold) measurement.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Fraction of the closed-loop traffic with a dead depth sensor.
    pub fault_rate: f64,
    /// Per-request deadline in milliseconds; 0 means no deadline.
    pub deadline_ms: u64,
    /// Breaker trip threshold (quarantine rate, strictly above trips).
    pub threshold: f32,
    /// The first run's full report (tally, breaker log, pool delta).
    pub report: ChaosReport,
    /// Whether a second run of the identical config produced the same
    /// fault-schedule fingerprint.
    pub reproducible: bool,
}

/// The full sweep grid and its per-cell reports.
#[derive(Debug, Clone)]
pub struct ChaosSweepResult {
    /// Fault rates swept.
    pub fault_rates: Vec<f64>,
    /// Deadlines swept, milliseconds (0 = none).
    pub deadlines_ms: Vec<u64>,
    /// Breaker trip thresholds swept.
    pub thresholds: Vec<f32>,
    /// One cell per grid point, in (rate, deadline, threshold) order.
    pub cells: Vec<ChaosCell>,
}

impl ChaosSweepResult {
    /// The measured cell for a grid point.
    pub fn cell(&self, fault_rate: f64, deadline_ms: u64, threshold: f32) -> Option<&ChaosCell> {
        self.cells.iter().find(|c| {
            c.fault_rate == fault_rate && c.deadline_ms == deadline_ms && c.threshold == threshold
        })
    }

    /// How many cells replayed bit-identically.
    pub fn reproducible_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.reproducible).count()
    }

    /// Cells whose deadline cannot race the injected slowdown: none, or
    /// comfortably above `SLOWDOWN_MS`. These must all be reproducible.
    pub fn deterministic_cells(&self) -> impl Iterator<Item = &ChaosCell> {
        self.cells
            .iter()
            .filter(|c| c.deadline_ms == 0 || c.deadline_ms >= 1_000)
    }
}

/// Sweep grid for a scale: (fault rates, deadlines ms, thresholds,
/// closed-loop requests split between corrupt and calm).
fn grid(scale: ExperimentScale) -> (Vec<f64>, Vec<u64>, Vec<f32>, usize) {
    match scale {
        // The 20 ms deadline sits below the 60 ms slowdown on purpose:
        // that column shows deadline-based shedding under degraded
        // batches (and is the one column allowed to be timing-dependent).
        ExperimentScale::Full => (
            vec![0.0, 0.25, 0.5],
            vec![0, 20, 10_000],
            vec![0.25, 0.75],
            16,
        ),
        ExperimentScale::Quick => (vec![0.0, 0.5], vec![10_000], vec![0.5], 6),
    }
}

/// The fault schedule for one cell: corrupt traffic at `fault_rate`,
/// then calm recovery traffic, then a slowdown, a panic storm, a stale
/// burst and a queue-full storm so every failure mode appears in every
/// cell.
fn schedule(fault_rate: f64, requests: usize, scale: ExperimentScale) -> Vec<Scene> {
    let corrupt = ((requests as f64) * fault_rate).round() as usize;
    let calm = requests - corrupt;
    let (slow, panic, stale, storm) = match scale {
        ExperimentScale::Full => (2, 2, 2, 2),
        ExperimentScale::Quick => (1, 1, 1, 1),
    };
    let mut scenes = Vec::new();
    if corrupt > 0 {
        scenes.push(Scene::Corrupt {
            requests: corrupt,
            fault: SensorFault::DepthDropout { p: 1.0 },
        });
    }
    if calm > 0 {
        scenes.push(Scene::Calm { requests: calm });
    }
    scenes.push(Scene::Slowdown {
        requests: slow,
        sleep_ms: SLOWDOWN_MS,
    });
    scenes.push(Scene::PanicStorm { requests: panic });
    scenes.push(Scene::Stale { requests: stale });
    scenes.push(Scene::QueueStorm { excess: storm });
    scenes
}

/// A small breaker tuned so the sweep's short schedules can complete a
/// full trip→cooldown→probe→close cycle: threshold is the swept value,
/// window and cooldown shrink from the serving defaults.
fn breaker(threshold: f32) -> BreakerConfig {
    BreakerConfig::default()
        .with_trip_threshold(threshold)
        .with_window(8)
        .with_cooldown(4)
}

/// Runs one grid cell twice and compares fingerprints.
///
/// # Errors
///
/// Returns the harness error if either run loses a request, mismatches
/// the server's own tally or breaks conservation — an experiment-ending
/// finding, not a data point.
fn measure_cell(
    fault_rate: f64,
    deadline_ms: u64,
    threshold: f32,
    requests: usize,
    scale: ExperimentScale,
) -> Result<ChaosCell, ChaosError> {
    let deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
    let config = ChaosConfig::default()
        .with_seed(0xC4A05 ^ ((deadline_ms + 1) << 20) ^ ((threshold * 100.0) as u64))
        .with_scenes(schedule(fault_rate, requests, scale))
        .with_default_deadline(deadline)
        .with_breaker(Some(breaker(threshold)));
    let first = sf_chaos::run(&config)?;
    let second = sf_chaos::run(&config)?;
    let reproducible = first.fingerprint() == second.fingerprint();
    Ok(ChaosCell {
        fault_rate,
        deadline_ms,
        threshold,
        report: first,
        reproducible,
    })
}

/// Runs the sweep. Panics if any cell violates the harness invariants
/// (lost request, tally mismatch, non-conservation, stalled pool) —
/// those are correctness failures, not measurements.
pub fn run(scale: ExperimentScale) -> ChaosSweepResult {
    let (fault_rates, deadlines_ms, thresholds, requests) = grid(scale);
    let mut cells = Vec::new();
    for &fault_rate in &fault_rates {
        for &deadline_ms in &deadlines_ms {
            for &threshold in &thresholds {
                let cell = measure_cell(fault_rate, deadline_ms, threshold, requests, scale)
                    .unwrap_or_else(|e| {
                        panic!(
                            "chaos cell (rate {fault_rate}, deadline {deadline_ms} ms, \
                             threshold {threshold}) violated a resilience invariant: {e}"
                        )
                    });
                cells.push(cell);
            }
        }
    }
    ChaosSweepResult {
        fault_rates,
        deadlines_ms,
        thresholds,
        cells,
    }
}

/// Renders the sweep as one row per cell plus the invariant summary.
pub fn render(result: &ChaosSweepResult) -> String {
    let mut table = TextTable::new(vec![
        "fault", "deadline", "thresh", "done", "expired", "failed", "shed", "quar", "trips",
        "final", "repro",
    ]);
    for cell in &result.cells {
        let t = &cell.report.tally;
        table.add_row(vec![
            format!("{:.0}%", cell.fault_rate * 100.0),
            if cell.deadline_ms == 0 {
                "none".to_string()
            } else {
                format!("{} ms", cell.deadline_ms)
            },
            format!("{:.2}", cell.threshold),
            t.completed.to_string(),
            t.expired.to_string(),
            t.failed.to_string(),
            t.rejected.to_string(),
            cell.report.quarantined.to_string(),
            cell.report.breaker_trips.to_string(),
            cell.report
                .breaker_final
                .map_or_else(|| "-".to_string(), |s| s.to_string()),
            if cell.reproducible { "yes" } else { "VARIED" }.to_string(),
        ]);
    }
    let mut out = String::from("Chaos resilience — fault rate x deadline x breaker threshold\n");
    out.push_str(&table.render());
    out.push_str(&format!(
        "conservation : submitted = completed + shed + expired + failed held in all \
         {} cells (the harness fails otherwise)\n",
        result.cells.len()
    ));
    out.push_str(&format!(
        "reproducible : {}/{} cells replayed to identical fingerprints \
         (sub-{SLOWDOWN_MS} ms deadline cells may legitimately vary)\n",
        result.reproducible_cells(),
        result.cells.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_partitions_traffic_by_fault_rate() {
        let scenes = schedule(0.25, 16, ExperimentScale::Full);
        assert!(matches!(scenes[0], Scene::Corrupt { requests: 4, .. }));
        assert!(matches!(scenes[1], Scene::Calm { requests: 12 }));
        // Rate 0 drops the corrupt scene entirely instead of emitting a
        // zero-request scene the config validator would reject.
        let clean = schedule(0.0, 16, ExperimentScale::Full);
        assert!(matches!(clean[0], Scene::Calm { requests: 16 }));
        assert!(clean.iter().all(|s| !matches!(s, Scene::Corrupt { .. })));
    }

    #[test]
    fn sweep_breakers_are_valid() {
        for t in [0.0, 0.25, 0.5, 0.75, 1.0] {
            breaker(t).validate().expect("sweep breaker config valid");
        }
    }
}
