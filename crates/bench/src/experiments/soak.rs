//! Long-haul soak sweep — weather kind × severity × rig size.
//!
//! The chaos experiment stresses the server with request-level fault
//! schedules; this one stresses the whole *scenario* pipeline: every
//! cell drives a closed-loop [`sf_chaos::run_soak`] stream (rendered
//! weather, occluder traffic, a multi-LiDAR rig, a mid-run dead-sensor
//! burst) against a replica fleet, twice, and records the ledger plus
//! whether the two runs fingerprint identically.
//!
//! The headline claims this table backs:
//! - **conservation under weather** — every window of every cell
//!   reconciles `submitted = completed + rejected + expired + failed +
//!   redirected` (the harness fails the cell otherwise);
//! - **breaker isolation** — the burst source trips and recovers in
//!   every cell while the clean sources never trip, independent of
//!   weather severity or rig size;
//! - **determinism** — every cell replays to an identical fingerprint.

use sf_chaos::{SoakConfig, SoakError, SoakReport};
use sf_scene::{Rig, Weather};

use crate::{ExperimentScale, TextTable};

/// One (weather, rig) soak measurement.
#[derive(Debug, Clone)]
pub struct SoakCell {
    /// The constant weather the cell ran under.
    pub weather: Weather,
    /// Number of rig mounts (independent LiDAR sources).
    pub rig_size: usize,
    /// The first run's full report.
    pub report: SoakReport,
    /// Whether the second run produced the identical fingerprint.
    pub reproducible: bool,
}

/// The full sweep and its per-cell reports.
#[derive(Debug, Clone)]
pub struct SoakSweepResult {
    /// One cell per (weather, rig) grid point.
    pub cells: Vec<SoakCell>,
    /// Frames per cell (one run; each cell executes two runs).
    pub frames: u64,
}

impl SoakSweepResult {
    /// How many cells replayed bit-identically.
    pub fn reproducible_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.reproducible).count()
    }
}

/// Sweep grid for a scale: (weathers, rigs, frames, window).
fn grid(scale: ExperimentScale) -> (Vec<Weather>, Vec<Rig>, u64, u64) {
    let weathers = vec![
        Weather::clear(),
        Weather::rain(0.3),
        Weather::rain(0.7),
        Weather::fog(0.3),
        Weather::fog(0.7),
        Weather::snow(0.3),
        Weather::snow(0.7),
    ];
    match scale {
        ExperimentScale::Full => (weathers, vec![Rig::dual(), Rig::triple()], 240, 60),
        ExperimentScale::Quick => (
            vec![Weather::clear(), Weather::fog(0.7)],
            vec![Rig::dual()],
            120,
            30,
        ),
    }
}

/// Builds one cell's scenario: the smoke soak reshaped to the sweep's
/// frame budget, pinned to one weather and one rig. The dead-sensor
/// burst on source 1 stays so every cell also exercises the breaker.
fn cell_config(weather: Weather, rig: &Rig, frames: u64, window: u64) -> SoakConfig {
    let mut config = SoakConfig::smoke()
        .with_seed(0x50A4 ^ (rig.len() as u64) << 16 ^ (weather.to_string().len() as u64))
        .with_rig(rig.clone().with_resolution(12, 48))
        .with_constant_weather(weather);
    config.frames = frames;
    config.window = window;
    // The global scratch counter is process-wide and monotone; with many
    // cells sharing this process a later cell would inherit an earlier
    // cell's peak, so the plateau probe is only meaningful in the CLI's
    // single-scenario run (`roadseg soak`), not here.
    config.check_memory = false;
    config
}

/// Runs one grid cell twice and compares fingerprints.
///
/// # Errors
///
/// Returns the harness error if either run breaks a window invariant —
/// an experiment-ending finding, not a data point.
fn measure_cell(
    weather: Weather,
    rig: &Rig,
    frames: u64,
    window: u64,
) -> Result<SoakCell, SoakError> {
    let config = cell_config(weather, rig, frames, window);
    let first = sf_chaos::run_soak(&config)?;
    let second = sf_chaos::run_soak(&config)?;
    let reproducible = first.fingerprint() == second.fingerprint();
    Ok(SoakCell {
        weather,
        rig_size: rig.len(),
        report: first,
        reproducible,
    })
}

/// Runs the sweep. Panics if any cell violates a soak invariant (lost
/// request, window non-conservation, breaker off schedule) — those are
/// correctness failures, not measurements.
pub fn run(scale: ExperimentScale) -> SoakSweepResult {
    let (weathers, rigs, frames, window) = grid(scale);
    let mut cells = Vec::new();
    for &weather in &weathers {
        for rig in &rigs {
            let cell = measure_cell(weather, rig, frames, window).unwrap_or_else(|e| {
                panic!(
                    "soak cell (weather {weather}, {} mounts) violated a scenario \
                     invariant: {e}",
                    rig.len()
                )
            });
            cells.push(cell);
        }
    }
    SoakSweepResult { cells, frames }
}

/// Renders the sweep as one row per cell plus the invariant summary.
pub fn render(result: &SoakSweepResult) -> String {
    let mut table = TextTable::new(vec![
        "weather", "rig", "frames", "done", "rejected", "failed", "trips@1", "windows", "repro",
    ]);
    for cell in &result.cells {
        let s = &cell.report.stats;
        table.add_row(vec![
            cell.weather.to_string(),
            cell.rig_size.to_string(),
            result.frames.to_string(),
            s.completed.to_string(),
            s.rejected.to_string(),
            s.failed.to_string(),
            cell.report
                .source_trips
                .get(&1)
                .copied()
                .unwrap_or(0)
                .to_string(),
            cell.report.windows.len().to_string(),
            if cell.reproducible { "yes" } else { "VARIED" }.to_string(),
        ]);
    }
    let mut out = String::from("Soak scenarios — weather x severity x rig size\n");
    out.push_str(&table.render());
    out.push_str(&format!(
        "conservation : every window of all {} cells reconciled submitted = completed \
         + rejected + expired + failed + redirected (the harness fails otherwise)\n",
        result.cells.len()
    ));
    out.push_str(
        "breakers     : source 1's dead-sensor burst tripped and re-closed in every \
         cell; clean sources never tripped\n",
    );
    out.push_str(&format!(
        "reproducible : {}/{} cells replayed to identical fingerprints\n",
        result.reproducible_cells(),
        result.cells.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_configs_validate_at_both_scales() {
        for scale in [ExperimentScale::Full, ExperimentScale::Quick] {
            let (weathers, rigs, frames, window) = grid(scale);
            for &weather in &weathers {
                for rig in &rigs {
                    cell_config(weather, rig, frames, window)
                        .validate()
                        .expect("sweep cell scenario valid");
                }
            }
        }
    }

    #[test]
    fn quick_sweep_conserves_and_reproduces() {
        let result = run(ExperimentScale::Quick);
        assert_eq!(result.cells.len(), 2);
        assert_eq!(result.reproducible_cells(), 2);
        for cell in &result.cells {
            let s = &cell.report.stats;
            assert_eq!(s.completed, result.frames * cell.rig_size as u64);
            assert!(cell.report.source_trips[&1] > 0, "burst source must trip");
        }
        let text = render(&result);
        assert!(text.contains("fog:0.7"), "{text}");
        assert!(text.contains("2/2 cells"), "{text}");
    }
}
