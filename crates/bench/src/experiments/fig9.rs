//! Fig. 9 / Fig. 1 — qualitative segmentation results under adverse
//! lighting, one scene per road category.
//!
//! Trains AllFilter_U, renders fresh scenes under deliberately hostile
//! lighting (over-exposure, shadows, night), runs inference, and writes
//! RGB / depth / overlay images as PPM/PGM files plus ASCII previews.

use std::path::{Path, PathBuf};

use sf_core::{predict_probability, FusionScheme};
use sf_dataset::Sample;
use sf_scene::{overlay_mask, Lighting, RoadCategory};
use sf_vision::GrayImage;
use sf_vision::RgbImage;

use crate::experiments::Bundle;
use crate::ExperimentScale;

/// One qualitative panel: a scene, its inputs and the prediction.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Road scene category.
    pub category: RoadCategory,
    /// Lighting preset name.
    pub lighting: &'static str,
    /// The rendered inputs and ground truth.
    pub sample: Sample,
    /// Predicted probability map.
    pub probability: GrayImage,
    /// Pixel accuracy of the thresholded prediction vs ground truth.
    pub pixel_accuracy: f64,
}

/// The Fig. 9 output: three panels plus any files written.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// UM / UMM / UU panels.
    pub panels: Vec<Panel>,
    /// Files written (empty if no output directory was supplied).
    pub files: Vec<PathBuf>,
}

/// The adverse lighting per category used for the figure: over-exposure,
/// shadows and night, mirroring the paper's chosen examples.
pub fn panel_lighting() -> [(&'static str, Lighting); 3] {
    [
        ("overexposed", Lighting::overexposed()),
        ("shadows", Lighting::harsh_shadows()),
        ("night", Lighting::night()),
    ]
}

/// Trains AllFilter_U and produces the three panels. When `out_dir` is
/// given, writes `fig9_<cat>_{rgb,depth,gt,overlay}.{ppm,pgm}` files.
pub fn run(scale: ExperimentScale, out_dir: Option<&Path>) -> std::io::Result<Fig9Result> {
    let bundle = Bundle::new(scale);
    let alpha = scale.train_config().alpha;
    let (net, _) = bundle.train_scheme(FusionScheme::AllFilterU, alpha);
    let camera = bundle.data.config().camera();
    let mut panels = Vec::new();
    let mut files = Vec::new();
    for (category, (lighting_name, lighting)) in RoadCategory::ALL.into_iter().zip(panel_lighting())
    {
        // Fresh hold-out scenes, not in the training set (seed offset).
        let sample = Sample::render(
            category,
            0xF19_0000 + category.code().len() as u64,
            lighting_name,
            lighting,
            &camera,
        );
        let probability = predict_probability(&net, &sample);
        let gt = &sample.gt;
        let correct = probability
            .data()
            .iter()
            .zip(gt.data())
            .filter(|(&p, &t)| (p >= 0.5) == (t > 0.5))
            .count();
        let pixel_accuracy = correct as f64 / gt.numel() as f64;
        if let Some(dir) = out_dir {
            std::fs::create_dir_all(dir)?;
            let rgb = RgbImage::from_tensor(&sample.rgb);
            let mask = GrayImage::from_raw(
                probability.width(),
                probability.height(),
                probability
                    .data()
                    .iter()
                    .map(|&p| f32::from(p >= 0.5))
                    .collect(),
            );
            let overlay = overlay_mask(&rgb, &mask);
            let stem = format!("fig9_{}_{}", category.code().to_lowercase(), lighting_name);
            let rgb_path = dir.join(format!("{stem}_rgb.ppm"));
            rgb.write_ppm(&rgb_path)?;
            files.push(rgb_path);
            let depth_img = GrayImage::from_tensor(
                &sample
                    .depth
                    .reshape(&[sample.height(), sample.width()])
                    .expect("depth is [1,H,W]"),
            );
            let depth_path = dir.join(format!("{stem}_depth.pgm"));
            depth_img.write_pgm(&depth_path)?;
            files.push(depth_path);
            let overlay_path = dir.join(format!("{stem}_overlay.ppm"));
            overlay.write_ppm(&overlay_path)?;
            files.push(overlay_path);
        }
        panels.push(Panel {
            category,
            lighting: lighting_name,
            sample,
            probability,
            pixel_accuracy,
        });
    }
    Ok(Fig9Result { panels, files })
}

/// Renders ASCII previews: `#` predicted road on ground-truth road,
/// `!` false positive, `.` miss, space for agreed background.
pub fn render(result: &Fig9Result) -> String {
    let mut out = String::new();
    for panel in &result.panels {
        out.push_str(&format!(
            "Fig. 9 — {} under {} (pixel accuracy {:.1}%)\n",
            panel.category,
            panel.lighting,
            panel.pixel_accuracy * 100.0
        ));
        let (w, h) = (panel.probability.width(), panel.probability.height());
        let gt = &panel.sample.gt;
        for y in 0..h {
            for x in 0..w {
                let pred = panel.probability.get(x, y) >= 0.5;
                let truth = gt.data()[y * w + x] > 0.5;
                out.push(match (pred, truth) {
                    (true, true) => '#',
                    (true, false) => '!',
                    (false, true) => '.',
                    (false, false) => ' ',
                });
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_three_panels() {
        let result = run(ExperimentScale::Quick, None).expect("no io without out_dir");
        assert_eq!(result.panels.len(), 3);
        assert!(result.files.is_empty());
        for panel in &result.panels {
            assert!(
                panel.pixel_accuracy > 0.3,
                "accuracy {}",
                panel.pixel_accuracy
            );
        }
        let text = render(&result);
        assert!(text.contains("UM under overexposed"));
        assert!(text.contains('#'));
    }

    #[test]
    fn files_are_written_when_requested() {
        let dir = std::env::temp_dir().join("sf_fig9_test");
        let result = run(ExperimentScale::Quick, Some(&dir)).expect("writes succeed");
        assert_eq!(result.files.len(), 9);
        for f in &result.files {
            assert!(f.exists(), "{} missing", f.display());
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}
