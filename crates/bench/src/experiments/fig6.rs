//! Fig. 6 — the accuracy tables: five metrics × five architectures ×
//! three road scenes (UM, UMM, UU).

use sf_core::FusionScheme;
use sf_dataset::SegmentationEval;
use sf_scene::RoadCategory;

use crate::experiments::Bundle;
use crate::{ExperimentScale, TextTable};

/// One category's table: the evaluation of every scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryTable {
    /// The road scene.
    pub category: RoadCategory,
    /// `(scheme, eval)` in the paper's column order.
    pub evals: Vec<(FusionScheme, SegmentationEval)>,
}

impl CategoryTable {
    /// The evaluation of one scheme.
    pub fn eval(&self, scheme: FusionScheme) -> Option<&SegmentationEval> {
        self.evals
            .iter()
            .find(|(s, _)| *s == scheme)
            .map(|(_, e)| e)
    }

    /// The scheme with the highest F-score in this category.
    pub fn best_by_f(&self) -> FusionScheme {
        self.evals
            .iter()
            .max_by(|a, b| a.1.f_score.total_cmp(&b.1.f_score))
            .map(|(s, _)| *s)
            .expect("table is never empty")
    }
}

/// All three category tables.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Result {
    /// Tables in UM, UMM, UU order.
    pub tables: Vec<CategoryTable>,
}

impl Fig6Result {
    /// The table for one category.
    pub fn table(&self, category: RoadCategory) -> &CategoryTable {
        self.tables
            .iter()
            .find(|t| t.category == category)
            .expect("all categories present")
    }
}

/// Trains all five schemes once on the full training split and evaluates
/// each per category — the protocol behind Fig. 6.
pub fn run(scale: ExperimentScale) -> Fig6Result {
    let bundle = Bundle::new(scale);
    let alpha = scale.train_config().alpha;
    let mut nets: Vec<(FusionScheme, sf_core::FusionNet)> = FusionScheme::ALL
        .into_iter()
        .map(|scheme| (scheme, bundle.train_scheme(scheme, alpha).0))
        .collect();
    let tables = RoadCategory::ALL
        .into_iter()
        .map(|category| CategoryTable {
            category,
            evals: nets
                .iter_mut()
                .map(|(scheme, net)| (*scheme, bundle.eval_category(net, category)))
                .collect(),
        })
        .collect();
    Fig6Result { tables }
}

/// Renders the three tables in the paper's layout (metrics as rows,
/// models as columns, best model starred per metric).
pub fn render(result: &Fig6Result) -> String {
    let mut out = String::new();
    for table in &result.tables {
        let mut headers = vec!["Metric".to_string()];
        headers.extend(table.evals.iter().map(|(s, _)| s.abbrev().to_string()));
        let mut t = TextTable::new(headers);
        let metric_names = ["F-score", "AP", "PRE", "REC", "IOU"];
        for (mi, name) in metric_names.iter().enumerate() {
            let values: Vec<f64> = table.evals.iter().map(|(_, e)| e.as_row()[mi]).collect();
            t.add_numeric_row(*name, &values, true);
        }
        out.push_str(&format!(
            "Fig. 6({}) — {} road scene\n{}\n",
            (b'a'
                + result
                    .tables
                    .iter()
                    .position(|x| x.category == table.category)
                    .expect("table present") as u8) as char,
            table.category,
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_all_schemes_and_categories() {
        let result = run(ExperimentScale::Quick);
        assert_eq!(result.tables.len(), 3);
        for table in &result.tables {
            assert_eq!(table.evals.len(), 5);
            for (_, eval) in &table.evals {
                for v in eval.as_row() {
                    assert!((0.0..=100.0).contains(&v));
                }
            }
        }
        let text = render(&result);
        assert!(text.contains("UMM road scene"));
        assert!(text.contains("F-score"));
        assert!(text.contains('*'));
    }
}
