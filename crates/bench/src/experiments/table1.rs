//! Table I — properties of the candidate disparity metrics.
//!
//! The paper claims the histogram metrics (MI, cross-bin) carry no
//! spatial information, SSIM carries spatial information but punishes
//! luminance disparity, and only the proposed Feature Disparity has both
//! desired properties. This experiment measures the claims with three
//! controlled pairs over a sparse road-like test image `a`:
//!
//! - **offset pair** `(a, b)`: the same scene with one object moved —
//!   identical histogram, different structure;
//! - **destroyed pair** `(a, σa)`: one side randomly pixel-scrambled —
//!   identical histogram, all structure destroyed. A metric "has spatial
//!   information" iff it reacts to this pair.
//! - **night pair** `(a, night(a))`: gain 0.3 + sensor noise + clamping —
//!   same structure, severe luminance disparity. A metric "tolerates
//!   luminance disparity" iff it still reports this pair as matching
//!   (within 10% of its identical-vs-destroyed range).
//!
//! Measured divergence from the paper's qualitative matrix: pixel-wise
//! MI *does* react to the destroyed pair (correspondence decorrelates),
//! so it earns a spatial tick here; it still fails the luminance test,
//! and the headline claim — only Feature Disparity passes both — holds.

use sf_tensor::TensorRng;
use sf_vision::{
    cross_bin_distance, feature_disparity_images, l2_distance, mutual_information, ssim,
    EdgeExtractor, GrayImage,
};

use crate::{ExperimentScale, TextTable};

/// One metric's behaviour on the two operational tests.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRow {
    /// Metric name.
    pub name: &'static str,
    /// Score on the offset pair `(a, b)` (object moved).
    pub structured: f64,
    /// Score on the destroyed pair `(a, σa)` (one side scrambled).
    pub scrambled: f64,
    /// Score on the self pair `(a, a)`.
    pub identical: f64,
    /// Score on the night-transformed pair `(a, night(a))`.
    pub night: f64,
    /// Whether scrambling changed the score (spatial sensitivity).
    pub spatial_information: bool,
    /// Whether the night pair still scores as matching.
    pub luminance_tolerant: bool,
}

/// The full Table I result.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Result {
    /// One row per metric, in the paper's order (plus the L2 baseline).
    pub rows: Vec<MetricRow>,
}

impl Table1Result {
    /// Looks up a metric row by name.
    pub fn row(&self, name: &str) -> Option<&MetricRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// A sparse, road-like test image: a bright background, a darker
/// road wedge, and one dark blob whose position parameterises the
/// structural offset.
fn structured_image(n: usize, blob_x: f32) -> GrayImage {
    GrayImage::from_fn(n, n, |x, y| {
        let road: f32 = if y as f32 > 0.6 * n as f32
            && (x as f32 - n as f32 / 2.0).abs() < (y as f32 - 0.5 * n as f32)
        {
            0.35
        } else {
            0.6
        };
        let dx = x as f32 - blob_x;
        let dy = y as f32 - 0.3 * n as f32;
        let blob = if dx * dx + dy * dy < (0.12 * n as f32).powi(2) {
            -0.3
        } else {
            0.0
        };
        (road + blob).clamp(0.0, 1.0)
    })
}

/// The night transform: gain, additive sensor noise, clamping.
fn night(img: &GrayImage, rng: &mut TensorRng) -> GrayImage {
    GrayImage::from_fn(img.width(), img.height(), |x, y| {
        (img.get(x, y) * 0.3 + rng.uniform_scalar(-0.03, 0.03)).clamp(0.0, 1.0)
    })
}

/// Applies a random pixel permutation to an image.
fn scramble(img: &GrayImage, permutation: &[usize]) -> GrayImage {
    let data: Vec<f32> = permutation.iter().map(|&i| img.data()[i]).collect();
    GrayImage::from_raw(img.width(), img.height(), data)
}

/// Runs the Table I property study. `scale` only affects image size.
pub fn run(scale: ExperimentScale) -> Table1Result {
    let n = match scale {
        ExperimentScale::Full => 64,
        ExperimentScale::Quick => 32,
    };
    let mut rng = TensorRng::seed_from(0x7AB1);
    let a = structured_image(n, 0.35 * n as f32);
    let offset = structured_image(n, 0.7 * n as f32);
    let night_a = night(&a, &mut rng);
    let mut permutation: Vec<usize> = (0..n * n).collect();
    rng.shuffle(&mut permutation);
    let destroyed = scramble(&a, &permutation);
    let extractor = EdgeExtractor::default();

    type MetricFn = Box<dyn Fn(&GrayImage, &GrayImage) -> f64>;
    struct Spec {
        name: &'static str,
        f: MetricFn,
    }
    let specs = vec![
        Spec {
            name: "MI",
            f: Box::new(|x, y| mutual_information(x, y) as f64),
        },
        Spec {
            name: "Cross-bin",
            f: Box::new(|x, y| cross_bin_distance(x, y) as f64),
        },
        Spec {
            name: "SSIM",
            f: Box::new(|x, y| ssim(x, y) as f64),
        },
        Spec {
            name: "L2",
            f: Box::new(|x, y| l2_distance(x, y) as f64),
        },
        Spec {
            name: "Feature Disparity",
            f: Box::new(move |x, y| feature_disparity_images(x, y, &extractor) as f64),
        },
    ];

    let rows = specs
        .into_iter()
        .map(|spec| {
            let identical = (spec.f)(&a, &a);
            let structured = (spec.f)(&a, &offset);
            let scrambled = (spec.f)(&a, &destroyed);
            let night_v = (spec.f)(&a, &night_a);
            // Spatial information: destroying all structure must move the
            // score by more than 10% of the metric's observed scale.
            let scale_mag = identical
                .abs()
                .max(scrambled.abs())
                .max(night_v.abs())
                .max(1e-9);
            let spatial_information = (scrambled - identical).abs() > 0.1 * scale_mag;
            // Luminance tolerance: the night pair stays within 10% of the
            // identical→destroyed range of the metric.
            let range = (scrambled - identical).abs().max(0.1 * scale_mag);
            let luminance_tolerant = (night_v - identical).abs() < 0.1 * range.max(1e-9)
                || (night_v - identical).abs() < 0.02 * scale_mag;
            MetricRow {
                name: spec.name,
                structured,
                scrambled,
                identical,
                night: night_v,
                spatial_information,
                luminance_tolerant,
            }
        })
        .collect();
    Table1Result { rows }
}

/// Renders the result in the paper's yes/no form plus the raw scores.
pub fn render(result: &Table1Result) -> String {
    let mut check = TextTable::new(vec![
        "Feature disparity metric",
        "Spatial information",
        "Luminance tolerance",
    ]);
    for row in &result.rows {
        check.add_row(vec![
            row.name.to_string(),
            tick(row.spatial_information),
            tick(row.luminance_tolerant),
        ]);
    }
    let mut raw = TextTable::new(vec![
        "Metric",
        "identical",
        "offset pair",
        "destroyed pair",
        "night pair",
    ]);
    for row in &result.rows {
        raw.add_row(vec![
            row.name.to_string(),
            format!("{:.4}", row.identical),
            format!("{:.4}", row.structured),
            format!("{:.4}", row.scrambled),
            format!("{:.4}", row.night),
        ]);
    }
    format!(
        "Table I — metric property comparison\n{}\nRaw scores (MI/SSIM are similarities; Cross-bin/L2/FD are distances)\n{}",
        check.render(),
        raw.render()
    )
}

fn tick(v: bool) -> String {
    if v { "yes" } else { "no" }.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_property_matrix() {
        let result = run(ExperimentScale::Quick);
        // Cross-bin: histogram-only — blind to structure destruction and
        // intolerant of the night transform.
        let cb = result.row("Cross-bin").unwrap();
        assert!(!cb.spatial_information);
        assert!(!cb.luminance_tolerant);
        // MI fails the luminance test (the paper's second column).
        assert!(!result.row("MI").unwrap().luminance_tolerant);
        // SSIM: spatial yes, luminance no.
        let ssim_row = result.row("SSIM").unwrap();
        assert!(ssim_row.spatial_information);
        assert!(!ssim_row.luminance_tolerant);
        // L2 (the naive baseline) also fails luminance.
        assert!(!result.row("L2").unwrap().luminance_tolerant);
        // Feature disparity: the only metric with both properties.
        let fd = result.row("Feature Disparity").unwrap();
        assert!(fd.spatial_information);
        assert!(fd.luminance_tolerant);
        for row in &result.rows {
            if row.name != "Feature Disparity" {
                assert!(
                    !(row.spatial_information && row.luminance_tolerant),
                    "{} unexpectedly passes both tests",
                    row.name
                );
            }
        }
    }

    #[test]
    fn cross_bin_is_exactly_scramble_blind() {
        let result = run(ExperimentScale::Quick);
        let cb = result.row("Cross-bin").unwrap();
        // Scrambling preserves the histogram exactly.
        assert!((cb.scrambled - cb.identical).abs() < 1e-6);
    }

    #[test]
    fn render_contains_all_metric_names() {
        let result = run(ExperimentScale::Quick);
        let text = render(&result);
        for name in ["MI", "Cross-bin", "SSIM", "L2", "Feature Disparity"] {
            assert!(text.contains(name), "missing {name}");
        }
        assert!(text.contains("yes"));
        assert!(text.contains("no"));
    }
}
