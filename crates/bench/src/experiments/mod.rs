//! One module per paper artefact, each with a structured `run` function
//! and a text `render` mirroring the paper's presentation.

pub mod chaos;
pub mod fault_matrix;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet;
pub mod quant;
pub mod robustness;
pub mod serving;
pub mod sne;
pub mod soak;
pub mod table1;

use sf_core::{evaluate, train, EvalOptions, FusionNet, FusionScheme, TrainReport};
use sf_dataset::{RoadDataset, SegmentationEval};
use sf_scene::RoadCategory;

use crate::ExperimentScale;

/// Everything an experiment needs: dataset, camera and recipes.
#[derive(Debug)]
pub struct Bundle {
    /// The generated dataset at the experiment scale.
    pub data: RoadDataset,
    /// Scale the bundle was built for.
    pub scale: ExperimentScale,
}

impl Bundle {
    /// Generates the dataset for `scale`.
    pub fn new(scale: ExperimentScale) -> Bundle {
        Bundle {
            data: RoadDataset::generate(&scale.dataset_config()),
            scale,
        }
    }

    /// Trains a fresh model of `scheme` on the full training split with
    /// the Feature-Disparity loss weight `alpha`.
    pub fn train_scheme(&self, scheme: FusionScheme, alpha: f32) -> (FusionNet, TrainReport) {
        let mut net = FusionNet::new(scheme, &self.scale.network_config()).expect("valid config");
        let config = self.scale.train_config().with_alpha(alpha);
        let samples = self.data.train(None);
        let report = train(&mut net, &samples, &config);
        (net, report)
    }

    /// BEV evaluation on one category's test split.
    pub fn eval_category(&self, net: &mut FusionNet, category: RoadCategory) -> SegmentationEval {
        let samples = self.data.test(Some(category));
        let camera = self.data.config().camera();
        evaluate(net, &samples, &camera, &EvalOptions::default())
    }

    /// BEV evaluation pooled over all categories.
    pub fn eval_all(&self, net: &mut FusionNet) -> SegmentationEval {
        let samples = self.data.test(None);
        let camera = self.data.config().camera();
        evaluate(net, &samples, &camera, &EvalOptions::default())
    }
}
