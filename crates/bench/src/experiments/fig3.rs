//! Fig. 3 — (a) feature disparity per fusion stage with and without the
//! feature-matching technique; (b) the corresponding accuracy.
//!
//! The blue line of the paper is the *raw* baseline (no feature
//! matching); the orange line applies the proposed technique (the
//! Fusion-filter architecture trained with the Feature Disparity loss).
//! Disparity is measured with the independent Canny-sketch probe over a
//! handful of test pairs (the paper uses ten).
//!
//! Because the networks are fully convolutional, the probe renders its
//! input pairs at a higher resolution than training: at training scale
//! the deepest feature maps are smaller than the edge-detection kernel,
//! which would silence exactly the stages the figure is about.

use sf_core::{measure_disparity_with_null, FusionScheme};
use sf_dataset::{RenderOptions, Sample};
use sf_scene::{Lighting, PinholeCamera};

use crate::experiments::Bundle;
use crate::{ExperimentScale, TextTable};

/// The Fig. 3 measurements.
///
/// The raw sketch-MSE depends on feature-map resolution, so the
/// cross-stage trend is reported as the matched/null *ratio*: how much
/// more similar the maps being fused are than feature maps of unrelated
/// scenes at the same stage. A falling ratio with depth is the paper's
/// "high-level features hold similar features" observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Result {
    /// Mean matched-pair disparity per fusion stage for the Baseline.
    pub baseline_fd: Vec<f32>,
    /// Mean matched-pair disparity per stage with feature matching.
    pub filtered_fd: Vec<f32>,
    /// Null (unrelated scenes) disparity per stage for the Baseline.
    pub baseline_null: Vec<f32>,
    /// Null disparity per stage for the feature-matched model.
    pub filtered_null: Vec<f32>,
    /// Baseline BEV F-score over the full test set (Fig. 3(b)).
    pub baseline_f: f64,
    /// AllFilter_U BEV F-score (Fig. 3(b)).
    pub filtered_f: f64,
}

impl Fig3Result {
    /// Matched/null disparity ratios per stage for the baseline; below 1
    /// means the fused pair is more similar than chance.
    pub fn baseline_ratio(&self) -> Vec<f32> {
        ratio(&self.baseline_fd, &self.baseline_null)
    }

    /// Matched/null ratios per stage for the feature-matched model.
    pub fn filtered_ratio(&self) -> Vec<f32> {
        ratio(&self.filtered_fd, &self.filtered_null)
    }

    /// True if the baseline's matched/null disparity ratio decreases from
    /// the shallowest to the deepest stage (the paper's headline
    /// observation, resolution-calibrated).
    pub fn baseline_decreases_with_depth(&self) -> bool {
        let r = self.baseline_ratio();
        r.first() > r.last()
    }

    /// Mean over stages of (baseline − filtered) matched disparity.
    pub fn mean_reduction(&self) -> f32 {
        let n = self.baseline_fd.len().max(1) as f32;
        self.baseline_fd
            .iter()
            .zip(&self.filtered_fd)
            .map(|(b, f)| b - f)
            .sum::<f32>()
            / n
    }
}

fn ratio(matched: &[f32], null: &[f32]) -> Vec<f32> {
    matched
        .iter()
        .zip(null)
        .map(|(&m, &n)| if n > 1e-9 { m / n } else { 0.0 })
        .collect()
}

/// Renders fresh probe pairs at `factor`× the training resolution so
/// every fusion stage's feature maps are big enough for edge sketches.
fn probe_samples(scale: ExperimentScale, factor: usize, count: usize) -> Vec<Sample> {
    let base = scale.dataset_config();
    let camera = PinholeCamera::kitti_like(base.width * factor, base.height * factor);
    // Scale the LiDAR density and densification with the resolution, or
    // the depth channel would be mostly holes at 4x the pixel count.
    let options = RenderOptions::for_resolution_factor(factor);
    (0..count)
        .map(|i| {
            Sample::render_with(
                sf_scene::RoadCategory::ALL[i % 3],
                0x3F19_0000 + i as u64,
                "day",
                Lighting::day(),
                &camera,
                &options,
            )
        })
        .collect()
}

/// Trains both models and runs the per-stage disparity probe.
pub fn run(scale: ExperimentScale) -> Fig3Result {
    let bundle = Bundle::new(scale);
    let alpha = scale.train_config().alpha;
    // Blue line: the raw baseline, no feature matching at all.
    let (mut baseline, _) = bundle.train_scheme(FusionScheme::Baseline, 0.0);
    // Orange line: Fusion-filter + Feature Disparity loss.
    let (mut filtered, _) = bundle.train_scheme(FusionScheme::AllFilterU, alpha);
    let factor = match scale {
        ExperimentScale::Full => 4,
        ExperimentScale::Quick => 2,
    };
    let samples = probe_samples(scale, factor, scale.probe_samples());
    let refs: Vec<&Sample> = samples.iter().collect();
    let (baseline_probe, baseline_null) = measure_disparity_with_null(&mut baseline, &refs);
    let (filtered_probe, filtered_null) = measure_disparity_with_null(&mut filtered, &refs);
    Fig3Result {
        baseline_fd: baseline_probe.means(),
        filtered_fd: filtered_probe.means(),
        baseline_null: baseline_null.means(),
        filtered_null: filtered_null.means(),
        baseline_f: bundle.eval_all(&mut baseline).f_score,
        filtered_f: bundle.eval_all(&mut filtered).f_score,
    }
}

/// Renders the two series plus the accuracy comparison.
pub fn render(result: &Fig3Result) -> String {
    let stages = result.baseline_fd.len();
    let mut headers = vec!["Series".to_string()];
    headers.extend((1..=stages).map(|i| format!("stage {i}")));
    let mut t = TextTable::new(headers);
    t.add_row(
        std::iter::once("Baseline FD".to_string())
            .chain(result.baseline_fd.iter().map(|v| format!("{v:.4}")))
            .collect::<Vec<_>>(),
    );
    t.add_row(
        std::iter::once("Feature-matched FD".to_string())
            .chain(result.filtered_fd.iter().map(|v| format!("{v:.4}")))
            .collect::<Vec<_>>(),
    );
    t.add_row(
        std::iter::once("Baseline FD/null".to_string())
            .chain(result.baseline_ratio().iter().map(|v| format!("{v:.3}")))
            .collect::<Vec<_>>(),
    );
    t.add_row(
        std::iter::once("Feature-matched FD/null".to_string())
            .chain(result.filtered_ratio().iter().map(|v| format!("{v:.3}")))
            .collect::<Vec<_>>(),
    );
    format!(
        "Fig. 3(a) — feature disparity per fusion stage\n{}\nFig. 3(b) — accuracy: Baseline F = {:.2}, AllFilter_U F = {:.2}\n",
        t.render(),
        result.baseline_f,
        result.filtered_f
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_all_stages() {
        let result = run(ExperimentScale::Quick);
        assert_eq!(result.baseline_fd.len(), result.filtered_fd.len());
        assert!(!result.baseline_fd.is_empty());
        assert!(result
            .baseline_fd
            .iter()
            .all(|v| v.is_finite() && *v >= 0.0));
        // At 2× probe resolution even the deepest stage produces a
        // non-degenerate sketch comparison.
        assert!(
            result.baseline_fd.iter().any(|&v| v > 0.0),
            "all stages measured zero disparity"
        );
        let text = render(&result);
        assert!(text.contains("stage 1"));
        assert!(text.contains("Baseline F"));
    }
}
