//! Fleet resilience sweep: replica count × dispatch policy × kill
//! schedule for the `sf-serve` replica fleet under the seeded fleet
//! chaos harness. Prints the table recorded in `results/bench.txt`.

fn main() {
    let scale = sf_bench::scale_from_args();
    let result = sf_bench::experiments::fleet::run(scale);
    println!("{}", sf_bench::experiments::fleet::render(&result));
}
