//! Beyond-paper ablation: inverse-depth vs SNE surface-normal input
//! encoding for the depth branch (the SNE-RoadSeg preprocessing).

fn main() {
    let scale = sf_bench::scale_from_args();
    let result = sf_bench::experiments::sne::run(scale);
    println!("{}", sf_bench::experiments::sne::render(&result));
}
