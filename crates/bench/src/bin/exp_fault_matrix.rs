//! Beyond-paper: sensor fault-injection matrix — BEV F-score fusing a
//! broken depth sensor vs the camera-fallback degradation policy.

fn main() {
    let scale = sf_bench::scale_from_args();
    let result = sf_bench::experiments::fault_matrix::run(scale);
    println!("{}", sf_bench::experiments::fault_matrix::render(&result));
}
