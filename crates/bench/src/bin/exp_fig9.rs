//! Regenerates Fig. 9 (and Fig. 1): qualitative segmentations under
//! adverse lighting. Writes PPM/PGM panels into `results/fig9/`.

use std::path::Path;

fn main() -> std::io::Result<()> {
    let scale = sf_bench::scale_from_args();
    let out = Path::new("results/fig9");
    let result = sf_bench::experiments::fig9::run(scale, Some(out))?;
    println!("{}", sf_bench::experiments::fig9::render(&result));
    println!(
        "wrote {} image files under {}",
        result.files.len(),
        out.display()
    );
    Ok(())
}
