//! Regenerates Fig. 7: accuracy vs MACs vs parameters. Pass
//! `--sweep-share` to additionally ablate the sharing depth.

fn main() {
    let scale = sf_bench::scale_from_args();
    let sweep = std::env::args().any(|a| a == "--sweep-share");
    let result = sf_bench::experiments::fig7::run(scale, sweep);
    println!("{}", sf_bench::experiments::fig7::render(&result));
}
