//! Long-haul soak sweep: weather kind × severity × rig size, each cell a
//! closed-loop multi-LiDAR scenario (with a mid-run dead-sensor burst)
//! against a replica fleet, run twice for bit-reproducibility.
//! Prints the table recorded in `results/bench.txt`.

fn main() {
    let scale = sf_bench::scale_from_args();
    let result = sf_bench::experiments::soak::run(scale);
    println!("{}", sf_bench::experiments::soak::render(&result));
}
