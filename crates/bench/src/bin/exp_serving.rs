//! Serving-throughput sweep: batch size × client count for the
//! `sf-serve` dynamic batcher, plus the batched-vs-unbatched correctness
//! probe. Prints the table recorded in `results/bench.txt`.

fn main() {
    let scale = sf_bench::scale_from_args();
    let result = sf_bench::experiments::serving::run(scale);
    println!("{}", sf_bench::experiments::serving::render(&result));
}
