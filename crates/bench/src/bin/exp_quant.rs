//! Int8 quantization sweep: calibration-set size × batch size, reporting
//! MaxF/IOU deltas vs f32, single-core throughput for both precisions,
//! weight compression and per-cell output fingerprints. Prints the table
//! recorded in `results/bench.txt`.

fn main() {
    let scale = sf_bench::scale_from_args();
    let result = sf_bench::experiments::quant::run(scale);
    println!("{}", sf_bench::experiments::quant::render(&result));
}
