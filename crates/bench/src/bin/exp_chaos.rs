//! Chaos resilience sweep: fault rate × deadline × breaker threshold for
//! the `sf-serve` server under the seeded `sf-chaos` fault schedules.
//! Prints the table recorded in `results/bench.txt`.

fn main() {
    let scale = sf_bench::scale_from_args();
    let result = sf_bench::experiments::chaos::run(scale);
    println!("{}", sf_bench::experiments::chaos::render(&result));
}
