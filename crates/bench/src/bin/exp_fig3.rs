//! Regenerates Fig. 3: per-stage feature disparity with and without the
//! feature-matching technique, plus the accuracy comparison.

fn main() {
    let scale = sf_bench::scale_from_args();
    let result = sf_bench::experiments::fig3::run(scale);
    println!("{}", sf_bench::experiments::fig3::render(&result));
    println!(
        "baseline FD decreases with depth: {}",
        result.baseline_decreases_with_depth()
    );
    println!(
        "mean FD reduction from Fusion-filter: {:.4}",
        result.mean_reduction()
    );
}
