//! Regenerates Fig. 8: the Feature Disparity loss ablation. Pass
//! `--alpha-sweep` to extend the ablation over alpha ∈ {0, 0.1, 0.3, 0.5}.

fn main() {
    let scale = sf_bench::scale_from_args();
    let alphas: &[f32] = if std::env::args().any(|a| a == "--alpha-sweep") {
        &[0.0, 0.1, 0.3, 0.5]
    } else {
        &[]
    };
    let result = sf_bench::experiments::fig8::run(scale, alphas);
    println!("{}", sf_bench::experiments::fig8::render(&result));
}
