//! Beyond-paper: quantitative robustness matrix — BEV F-score per
//! lighting condition, with and without the LiDAR input.

fn main() {
    let scale = sf_bench::scale_from_args();
    let result = sf_bench::experiments::robustness::run(scale);
    println!("{}", sf_bench::experiments::robustness::render(&result));
}
