//! Regenerates Table I: feature-disparity metric property comparison.

fn main() {
    let scale = sf_bench::scale_from_args();
    let result = sf_bench::experiments::table1::run(scale);
    println!("{}", sf_bench::experiments::table1::render(&result));
}
