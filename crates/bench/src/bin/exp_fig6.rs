//! Regenerates Fig. 6: the per-scene accuracy tables for all five
//! architectures.

fn main() {
    let scale = sf_bench::scale_from_args();
    let result = sf_bench::experiments::fig6::run(scale);
    println!("{}", sf_bench::experiments::fig6::render(&result));
}
