//! Experiment scales: the full reproduction recipe vs a smoke-test
//! reduction.

use sf_core::{NetworkConfig, TrainConfig};
use sf_dataset::DatasetConfig;

/// How big an experiment run should be.
///
/// `Full` is the reproduction recipe used for EXPERIMENTS.md; `Quick`
/// shrinks everything so smoke tests finish in seconds while exercising
/// the identical code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExperimentScale {
    /// The full reproduction recipe.
    #[default]
    Full,
    /// A minutes-to-seconds reduction for CI and integration tests.
    Quick,
}

impl ExperimentScale {
    /// Dataset recipe for this scale.
    pub fn dataset_config(self) -> DatasetConfig {
        match self {
            ExperimentScale::Full => DatasetConfig::standard(),
            ExperimentScale::Quick => DatasetConfig {
                width: 48,
                height: 16,
                train_per_category: 6,
                test_per_category: 3,
                seed: 2022,
                adverse_fraction: 0.3,
                traffic_fraction: 0.25,
                ..DatasetConfig::standard()
            },
        }
    }

    /// Network recipe for this scale.
    pub fn network_config(self) -> NetworkConfig {
        match self {
            ExperimentScale::Full => NetworkConfig::standard(),
            ExperimentScale::Quick => NetworkConfig {
                width: 48,
                height: 16,
                stage_channels: vec![4, 6, 8],
                shared_stages: 1,
                depth_channels: 1,
                seed: 42,
            },
        }
    }

    /// Training recipe for this scale.
    pub fn train_config(self) -> TrainConfig {
        match self {
            ExperimentScale::Full => TrainConfig::standard(),
            ExperimentScale::Quick => TrainConfig {
                epochs: 2,
                ..TrainConfig::standard()
            },
        }
    }

    /// Number of probe samples for the Fig. 3 measurement (the paper uses
    /// ten).
    pub fn probe_samples(self) -> usize {
        match self {
            ExperimentScale::Full => 10,
            ExperimentScale::Quick => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_consistent() {
        for scale in [ExperimentScale::Full, ExperimentScale::Quick] {
            let d = scale.dataset_config();
            let n = scale.network_config();
            assert_eq!(d.width, n.width, "dataset/network width agree");
            assert_eq!(d.height, n.height);
            n.validate().expect("scale configs are valid");
            assert!(scale.probe_samples() > 0);
        }
        assert_eq!(ExperimentScale::default(), ExperimentScale::Full);
    }

    #[test]
    fn quick_is_smaller_than_full() {
        let q = ExperimentScale::Quick;
        let f = ExperimentScale::Full;
        assert!(q.dataset_config().train_per_category < f.dataset_config().train_per_category);
        assert!(q.train_config().epochs < f.train_config().epochs);
        assert!(q.network_config().stage_channels.len() <= f.network_config().stage_channels.len());
    }
}
