//! Plain-text tables for experiment output.

use std::fmt::Write as _;

/// A simple aligned text table with optional per-row best-value marking,
/// mirroring how the paper highlights the best model per metric.
///
/// # Examples
///
/// ```
/// use sf_bench::TextTable;
///
/// let mut t = TextTable::new(vec!["Metric", "A", "B"]);
/// t.add_numeric_row("F-score", &[95.1, 95.9], true);
/// let s = t.render();
/// assert!(s.contains("95.90*")); // best value starred
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<impl Into<String>>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a pre-formatted row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn add_row(&mut self, cells: Vec<impl Into<String>>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} does not match {} headers",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Adds a row with a label and numeric cells formatted to two
    /// decimals; when `mark_best` is set the maximum gets a `*` suffix
    /// (like the bold entries in Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if `1 + values.len()` does not match the header count.
    pub fn add_numeric_row(&mut self, label: impl Into<String>, values: &[f64], mark_best: bool) {
        let best = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut cells = vec![label.into()];
        for &v in values {
            let marker = if mark_best && (v - best).abs() < 1e-9 {
                "*"
            } else {
                ""
            };
            cells.push(format!("{v:.2}{marker}"));
        }
        self.add_row(cells);
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "| {:width$} ", cell, width = widths[i]);
            }
            out.push_str("|\n");
        };
        write_row(&mut out, &self.headers);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<width$}", "", width = w + 2);
            if i == cols - 1 {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_with_best_marker() {
        let mut t = TextTable::new(vec!["Metric", "Baseline", "AU"]);
        t.add_numeric_row("F-score", &[95.12, 95.86], true);
        t.add_numeric_row("AP", &[92.47, 93.01], false);
        let s = t.render();
        assert!(s.contains("95.86*"));
        assert!(!s.contains("95.12*"));
        assert!(!s.contains("93.01*"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.add_row(vec!["only one"]);
    }

    #[test]
    fn ties_mark_all_best() {
        let mut t = TextTable::new(vec!["m", "x", "y"]);
        t.add_numeric_row("r", &[1.0, 1.0], true);
        let s = t.render();
        assert_eq!(s.matches('*').count(), 2);
    }
}
