//! Benchmarks of the disparity metrics (Table I candidates) and the edge
//! extractor — the per-probe cost of the paper's Fig. 3 measurement, and
//! the ablation between the Canny-sketch and Sobel-magnitude edge
//! operators inside FD.

use criterion::{criterion_group, criterion_main, Criterion};
use sf_tensor::TensorRng;
use sf_vision::{
    cross_bin_distance, feature_disparity, mutual_information, sobel_gradients, ssim,
    EdgeExtractor, GrayImage,
};

fn test_images() -> (GrayImage, GrayImage) {
    let a = GrayImage::from_fn(96, 32, |x, y| {
        if y > 16 && ((x as i32 - 48).unsigned_abs() as usize) < y - 10 {
            0.3
        } else {
            0.7
        }
    });
    let b = GrayImage::from_fn(96, 32, |x, y| a.get(x, y) * 0.5 + 0.1);
    (a, b)
}

fn bench_image_metrics(c: &mut Criterion) {
    let (a, b) = test_images();
    let extractor = EdgeExtractor::default();
    let mut group = c.benchmark_group("image_metrics_96x32");
    group.bench_function("ssim", |bch| bch.iter(|| ssim(&a, &b)));
    group.bench_function("mutual_information", |bch| {
        bch.iter(|| mutual_information(&a, &b))
    });
    group.bench_function("cross_bin", |bch| bch.iter(|| cross_bin_distance(&a, &b)));
    group.bench_function("canny_edges", |bch| bch.iter(|| extractor.extract(&a)));
    group.bench_function("sobel_gradients", |bch| bch.iter(|| sobel_gradients(&a)));
    group.finish();
}

fn bench_feature_disparity(c: &mut Criterion) {
    // The Fig. 3 probe cost: FD over an 8-channel feature map pair.
    let mut rng = TensorRng::seed_from(1);
    let fa = rng.uniform(&[8, 16, 48], 0.0, 1.0);
    let fb = rng.uniform(&[8, 16, 48], 0.0, 1.0);
    let extractor = EdgeExtractor::for_feature_maps();
    c.bench_function("feature_disparity_8ch_16x48", |b| {
        b.iter(|| feature_disparity(&fa, &fb, &extractor))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_image_metrics, bench_feature_disparity
}
criterion_main!(benches);
