//! Benchmarks of the disparity metrics (Table I candidates) and the edge
//! extractor — the per-probe cost of the paper's Fig. 3 measurement, and
//! the ablation between the Canny-sketch and Sobel-magnitude edge
//! operators inside FD.

use sf_bench::BenchHarness;
use sf_tensor::TensorRng;
use sf_vision::{
    cross_bin_distance, feature_disparity, mutual_information, sobel_gradients, ssim,
    EdgeExtractor, GrayImage,
};

fn test_images() -> (GrayImage, GrayImage) {
    let a = GrayImage::from_fn(96, 32, |x, y| {
        if y > 16 && ((x as i32 - 48).unsigned_abs() as usize) < y - 10 {
            0.3
        } else {
            0.7
        }
    });
    let b = GrayImage::from_fn(96, 32, |x, y| a.get(x, y) * 0.5 + 0.1);
    (a, b)
}

fn bench_image_metrics(h: &mut BenchHarness) {
    let (a, b) = test_images();
    let extractor = EdgeExtractor::default();
    h.bench("image_metrics_96x32/ssim", || ssim(&a, &b));
    h.bench("image_metrics_96x32/mutual_information", || {
        mutual_information(&a, &b)
    });
    h.bench("image_metrics_96x32/cross_bin", || {
        cross_bin_distance(&a, &b)
    });
    h.bench("image_metrics_96x32/canny_edges", || extractor.extract(&a));
    h.bench("image_metrics_96x32/sobel_gradients", || {
        sobel_gradients(&a)
    });
}

fn bench_feature_disparity(h: &mut BenchHarness) {
    // The Fig. 3 probe cost: FD over an 8-channel feature map pair.
    let mut rng = TensorRng::seed_from(1);
    let fa = rng.uniform(&[8, 16, 48], 0.0, 1.0);
    let fb = rng.uniform(&[8, 16, 48], 0.0, 1.0);
    let extractor = EdgeExtractor::for_feature_maps();
    h.bench("feature_disparity_8ch_16x48", || {
        feature_disparity(&fa, &fb, &extractor)
    });
}

fn main() {
    let mut h = BenchHarness::new("metrics");
    h.sample_size(30);
    bench_image_metrics(&mut h);
    bench_feature_disparity(&mut h);
    h.finish();
}
