//! Per-architecture inference latency — the runtime counterpart of
//! Fig. 7's analytic MAC comparison. The relative ordering (AB > AU >
//! Baseline ≈ BS/WS) should track the MAC counts.

use sf_autograd::Graph;
use sf_bench::BenchHarness;
use sf_core::{FusionNet, FusionScheme, NetworkConfig};
use sf_nn::Mode;
use sf_tensor::TensorRng;

fn bench_inference(h: &mut BenchHarness) {
    let config = NetworkConfig::standard();
    let mut rng = TensorRng::seed_from(1);
    let rgb = rng.uniform(&[1, 3, config.height, config.width], 0.0, 1.0);
    let depth = rng.uniform(&[1, 1, config.height, config.width], 0.0, 1.0);
    for scheme in FusionScheme::ALL {
        let mut net = FusionNet::new(scheme, &config).expect("valid config");
        h.bench(&format!("inference_96x32/{}", scheme.abbrev()), || {
            let mut g = Graph::new();
            let r = g.leaf(rgb.clone());
            let d = g.leaf(depth.clone());
            let out = net.forward(&mut g, r, d, Mode::Eval);
            g.value(out.logits).sum()
        });
    }
}

fn bench_training_step(h: &mut BenchHarness) {
    let config = NetworkConfig::standard();
    let mut rng = TensorRng::seed_from(2);
    let rgb = rng.uniform(&[2, 3, config.height, config.width], 0.0, 1.0);
    let depth = rng.uniform(&[2, 1, config.height, config.width], 0.0, 1.0);
    let target = rng
        .uniform(&[2, 1, config.height, config.width], 0.0, 1.0)
        .map(f32::round);
    for scheme in [FusionScheme::Baseline, FusionScheme::AllFilterU] {
        let mut net = FusionNet::new(scheme, &config).expect("valid config");
        h.bench(&format!("train_step_batch2/{}", scheme.abbrev()), || {
            let mut g = Graph::new();
            let r = g.leaf(rgb.clone());
            let d = g.leaf(depth.clone());
            let out = net.forward(&mut g, r, d, Mode::Train);
            let loss = g.bce_with_logits(out.logits, &target);
            g.backward(loss);
            g.value(loss).at(&[])
        });
    }
}

fn main() {
    let mut h = BenchHarness::new("inference");
    h.sample_size(10);
    bench_inference(&mut h);
    bench_training_step(&mut h);
    h.finish();
}
