//! End-to-end pipeline benchmarks: scene rendering, LiDAR scanning,
//! depth densification, BEV warping — the dataset-side costs that gate
//! how fast experiments regenerate.

use criterion::{criterion_group, criterion_main, Criterion};
use sf_dataset::{bev_warp, BevGrid};
use sf_scene::{
    depth_image_from_cloud, render_ground_truth, render_rgb, LidarSpec, Lighting, PinholeCamera,
    RoadCategory, SceneBuilder,
};
use sf_tensor::TensorRng;

fn bench_scene_pipeline(c: &mut Criterion) {
    let scene = SceneBuilder::new(RoadCategory::UrbanMultipleMarked, 7).build();
    let camera = PinholeCamera::kitti_like(96, 32);
    let mut group = c.benchmark_group("scene_pipeline_96x32");
    group.sample_size(20);
    group.bench_function("render_rgb_day", |b| {
        b.iter(|| render_rgb(&scene, &camera, Lighting::day()))
    });
    group.bench_function("render_rgb_shadows", |b| {
        b.iter(|| render_rgb(&scene, &camera, Lighting::harsh_shadows()))
    });
    group.bench_function("render_ground_truth", |b| {
        b.iter(|| render_ground_truth(&scene, &camera))
    });
    let spec = LidarSpec::default();
    group.bench_function("lidar_scan_48x160", |b| {
        b.iter(|| spec.scan(&scene, &mut TensorRng::seed_from(1)))
    });
    let cloud = spec.scan(&scene, &mut TensorRng::seed_from(1));
    group.bench_function("depth_densify_3_iters", |b| {
        b.iter(|| depth_image_from_cloud(&cloud, &camera, spec.max_range, 3))
    });
    let gt = render_ground_truth(&scene, &camera);
    group.bench_function("bev_warp_48x48", |b| {
        b.iter(|| bev_warp(&gt, &camera, &BevGrid::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_scene_pipeline);
criterion_main!(benches);
