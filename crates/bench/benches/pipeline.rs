//! End-to-end pipeline benchmarks: scene rendering, LiDAR scanning,
//! depth densification, BEV warping — the dataset-side costs that gate
//! how fast experiments regenerate.

use sf_bench::BenchHarness;
use sf_dataset::{bev_warp, BevGrid};
use sf_scene::{
    depth_image_from_cloud, render_ground_truth, render_rgb, LidarSpec, Lighting, PinholeCamera,
    RoadCategory, SceneBuilder,
};
use sf_tensor::TensorRng;

fn bench_scene_pipeline(h: &mut BenchHarness) {
    let scene = SceneBuilder::new(RoadCategory::UrbanMultipleMarked, 7).build();
    let camera = PinholeCamera::kitti_like(96, 32);
    h.bench("scene_pipeline_96x32/render_rgb_day", || {
        render_rgb(&scene, &camera, Lighting::day())
    });
    h.bench("scene_pipeline_96x32/render_rgb_shadows", || {
        render_rgb(&scene, &camera, Lighting::harsh_shadows())
    });
    h.bench("scene_pipeline_96x32/render_ground_truth", || {
        render_ground_truth(&scene, &camera)
    });
    let spec = LidarSpec::default();
    h.bench("scene_pipeline_96x32/lidar_scan_48x160", || {
        spec.scan(&scene, &mut TensorRng::seed_from(1))
    });
    let cloud = spec.scan(&scene, &mut TensorRng::seed_from(1));
    h.bench("scene_pipeline_96x32/depth_densify_3_iters", || {
        depth_image_from_cloud(&cloud, &camera, spec.max_range, 3)
    });
    let gt = render_ground_truth(&scene, &camera);
    h.bench("scene_pipeline_96x32/bev_warp_48x48", || {
        bev_warp(&gt, &camera, &BevGrid::default())
    });
}

fn main() {
    let mut h = BenchHarness::new("pipeline");
    h.sample_size(20);
    bench_scene_pipeline(&mut h);
    h.finish();
}
