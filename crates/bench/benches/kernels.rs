//! Micro-benchmarks of the numerical kernels that dominate training:
//! convolution forward/backward, matmul, pooling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sf_tensor::{conv2d, conv2d_backward, matmul, max_pool2d, Conv2dSpec, TensorRng};

fn bench_conv_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d_forward");
    // The actual stage geometries of the standard fusion network.
    for &(name, n, ci, co, h, w) in &[
        (
            "stage1_3to8_32x96",
            1usize,
            3usize,
            8usize,
            32usize,
            96usize,
        ),
        ("stage3_12to16_8x24", 1, 12, 16, 8, 24),
        ("stage5_24to32_2x6", 1, 24, 32, 2, 6),
    ] {
        let mut rng = TensorRng::seed_from(1);
        let x = rng.uniform(&[n, ci, h, w], -1.0, 1.0);
        let wgt = rng.kaiming(&[co, ci, 3, 3]);
        group.bench_function(name, |b| {
            b.iter(|| conv2d(&x, &wgt, None, Conv2dSpec::same(3)).expect("valid geometry"))
        });
    }
    group.finish();
}

fn bench_conv_backward(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(2);
    let x = rng.uniform(&[1, 8, 16, 48], -1.0, 1.0);
    let w = rng.kaiming(&[12, 8, 3, 3]);
    let spec = Conv2dSpec::same(3);
    let y = conv2d(&x, &w, None, spec).expect("valid geometry");
    let dy = rng.uniform(y.shape(), -1.0, 1.0);
    c.bench_function("conv2d_backward_8to12_16x48", |b| {
        b.iter(|| conv2d_backward(&x, &w, &dy, spec).expect("valid geometry"))
    });
}

fn bench_fusion_filter(c: &mut Criterion) {
    // The paper's 1×1 Fusion-filter at the widest fusion stage.
    let mut rng = TensorRng::seed_from(3);
    let x = rng.uniform(&[1, 8, 16, 48], -1.0, 1.0);
    let w = rng.kaiming(&[8, 8, 1, 1]);
    c.bench_function("fusion_filter_1x1_8ch_16x48", |b| {
        b.iter(|| conv2d(&x, &w, None, Conv2dSpec::default()).expect("valid geometry"))
    });
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(4);
    let a = rng.uniform(&[72, 128], -1.0, 1.0);
    let b = rng.uniform(&[128, 512], -1.0, 1.0);
    c.bench_function("matmul_72x128x512", |bch| {
        bch.iter(|| matmul(&a, &b).expect("shapes agree"))
    });
}

fn bench_max_pool(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(5);
    let x = rng.uniform(&[4, 8, 32, 96], -1.0, 1.0);
    c.bench_function("max_pool_2x2_batch4_8ch_32x96", |b| {
        b.iter_batched(
            || x.clone(),
            |x| max_pool2d(&x, 2, 2).expect("valid geometry"),
            BatchSize::SmallInput,
        )
    });
}

fn bench_elementwise_fusion(c: &mut Criterion) {
    // The baseline's fusion op itself: element-wise summation.
    let mut rng = TensorRng::seed_from(6);
    let a = rng.uniform(&[1, 8, 16, 48], -1.0, 1.0);
    let b = rng.uniform(&[1, 8, 16, 48], -1.0, 1.0);
    c.bench_function("elementwise_sum_8ch_16x48", |bch| bch.iter(|| a.add(&b)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_conv_forward, bench_conv_backward, bench_fusion_filter,
              bench_matmul, bench_max_pool, bench_elementwise_fusion
}
criterion_main!(benches);
