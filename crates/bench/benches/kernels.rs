//! Micro-benchmarks of the numerical kernels that dominate training:
//! convolution forward/backward, matmul, pooling — plus a head-to-head
//! of the persistent `sf-runtime` pool against spawning fresh OS threads
//! on every call (the strategy the pool replaced).

use sf_bench::BenchHarness;
use sf_tensor::{conv2d, conv2d_backward, matmul, max_pool2d, Conv2dSpec, Tensor, TensorRng};

fn bench_conv_forward(h: &mut BenchHarness) {
    // The actual stage geometries of the standard fusion network.
    for &(name, n, ci, co, hh, w) in &[
        (
            "conv2d_forward/stage1_3to8_32x96",
            1usize,
            3usize,
            8usize,
            32usize,
            96usize,
        ),
        ("conv2d_forward/stage3_12to16_8x24", 1, 12, 16, 8, 24),
        ("conv2d_forward/stage5_24to32_2x6", 1, 24, 32, 2, 6),
    ] {
        let mut rng = TensorRng::seed_from(1);
        let x = rng.uniform(&[n, ci, hh, w], -1.0, 1.0);
        let wgt = rng.kaiming(&[co, ci, 3, 3]);
        h.bench(name, || {
            conv2d(&x, &wgt, None, Conv2dSpec::same(3)).expect("valid geometry")
        });
    }
}

fn bench_conv_backward(h: &mut BenchHarness) {
    let mut rng = TensorRng::seed_from(2);
    let x = rng.uniform(&[1, 8, 16, 48], -1.0, 1.0);
    let w = rng.kaiming(&[12, 8, 3, 3]);
    let spec = Conv2dSpec::same(3);
    let y = conv2d(&x, &w, None, spec).expect("valid geometry");
    let dy = rng.uniform(y.shape(), -1.0, 1.0);
    h.bench("conv2d_backward_8to12_16x48", || {
        conv2d_backward(&x, &w, &dy, spec).expect("valid geometry")
    });
}

fn bench_fusion_filter(h: &mut BenchHarness) {
    // The paper's 1×1 Fusion-filter at the widest fusion stage.
    let mut rng = TensorRng::seed_from(3);
    let x = rng.uniform(&[1, 8, 16, 48], -1.0, 1.0);
    let w = rng.kaiming(&[8, 8, 1, 1]);
    h.bench("fusion_filter_1x1_8ch_16x48", || {
        conv2d(&x, &w, None, Conv2dSpec::default()).expect("valid geometry")
    });
}

fn bench_matmul(h: &mut BenchHarness) {
    let mut rng = TensorRng::seed_from(4);
    let a = rng.uniform(&[72, 128], -1.0, 1.0);
    let b = rng.uniform(&[128, 512], -1.0, 1.0);
    h.bench("matmul_72x128x512", || {
        matmul(&a, &b).expect("shapes agree")
    });
}

fn bench_max_pool(h: &mut BenchHarness) {
    let mut rng = TensorRng::seed_from(5);
    let x = rng.uniform(&[4, 8, 32, 96], -1.0, 1.0);
    h.bench_with_setup(
        "max_pool_2x2_batch4_8ch_32x96",
        || x.clone(),
        |x| max_pool2d(&x, 2, 2).expect("valid geometry"),
    );
}

fn bench_elementwise_fusion(h: &mut BenchHarness) {
    // The baseline's fusion op itself: element-wise summation.
    let mut rng = TensorRng::seed_from(6);
    let a = rng.uniform(&[1, 8, 16, 48], -1.0, 1.0);
    let b = rng.uniform(&[1, 8, 16, 48], -1.0, 1.0);
    h.bench("elementwise_sum_8ch_16x48", || a.add(&b));
}

/// The old parallel strategy: split the output rows across threads but
/// spawn (and join) a fresh OS thread per chunk on every single call.
/// Same ikj accumulation as `sf_tensor::matmul`'s parallel path.
fn matmul_spawn_per_call(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let threads = sf_runtime::num_threads();
    let mut out = vec![0.0f32; m * n];
    let chunk_rows = m.div_ceil(threads);
    let (a_data, b_data) = (a.data(), b.data());
    std::thread::scope(|scope| {
        for (ci, rows_out) in out.chunks_mut(chunk_rows * n).enumerate() {
            scope.spawn(move || {
                let row0 = ci * chunk_rows;
                for (r, out_row) in rows_out.chunks_mut(n).enumerate() {
                    let i = row0 + r;
                    for (p, &aik) in a_data[i * k..(i + 1) * k].iter().enumerate() {
                        let b_row = &b_data[p * n..(p + 1) * n];
                        for (o, &bpj) in out_row.iter_mut().zip(b_row) {
                            *o += aik * bpj;
                        }
                    }
                }
            });
        }
    });
    Tensor::from_vec(out, &[m, n]).expect("shape matches data")
}

/// The old conv strategy: one freshly spawned thread per image, per call.
fn conv_spawn_per_call(images: &[Tensor], w: &Tensor, spec: Conv2dSpec) -> Vec<Tensor> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = images
            .iter()
            .map(|x| scope.spawn(move || conv2d(x, w, None, spec).expect("valid geometry")))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

fn bench_pool_vs_spawn(h: &mut BenchHarness) {
    // Large matmul: above the parallel threshold, so `matmul` dispatches
    // row chunks onto the persistent pool. The spawn-per-call variant
    // does the identical row split with fresh OS threads every call.
    let mut rng = TensorRng::seed_from(7);
    let a = rng.uniform(&[256, 192], -1.0, 1.0);
    let b = rng.uniform(&[192, 256], -1.0, 1.0);
    h.bench("pool_vs_spawn/matmul_256x192x256_pool", || {
        matmul(&a, &b).expect("shapes agree")
    });
    h.bench("pool_vs_spawn/matmul_256x192x256_spawn_per_call", || {
        matmul_spawn_per_call(&a, &b)
    });

    // Batched conv forward: the pool path fans the batch across workers;
    // the spawn path launches one thread per image on every call.
    let batch = rng.uniform(&[8, 8, 16, 48], -1.0, 1.0);
    let images: Vec<Tensor> = (0..8)
        .map(|i| {
            let plane = 8 * 16 * 48;
            Tensor::from_vec(
                batch.data()[i * plane..(i + 1) * plane].to_vec(),
                &[1, 8, 16, 48],
            )
            .expect("shape matches data")
        })
        .collect();
    let w = rng.kaiming(&[12, 8, 3, 3]);
    let spec = Conv2dSpec::same(3);
    h.bench("pool_vs_spawn/conv2d_batch8_8to12_16x48_pool", || {
        conv2d(&batch, &w, None, spec).expect("valid geometry")
    });
    h.bench(
        "pool_vs_spawn/conv2d_batch8_8to12_16x48_spawn_per_call",
        || conv_spawn_per_call(&images, &w, spec),
    );
}

fn main() {
    let mut h = BenchHarness::new("kernels");
    h.sample_size(20);
    bench_conv_forward(&mut h);
    bench_conv_backward(&mut h);
    bench_fusion_filter(&mut h);
    bench_matmul(&mut h);
    bench_max_pool(&mut h);
    bench_elementwise_fusion(&mut h);
    bench_pool_vs_spawn(&mut h);
    h.finish();
}
