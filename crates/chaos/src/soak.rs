//! Long-haul soak harness: an endless seeded scenario stream against a
//! replica fleet.
//!
//! Where the scene-list harnesses ([`crate::run`] / [`crate::run_fleet`])
//! prove the stack survives short, hand-picked fault schedules, the soak
//! harness proves it survives *time*: thousands of scene-clock frames of
//! weather fronts rolling through, occluder traffic wrapping the
//! corridor, and per-source sensor fault bursts — all rendered by the
//! real [`sf_scene`] pipeline through a multi-LiDAR [`Rig`], submitted
//! closed-loop to a [`Fleet`], and checked window by window:
//!
//! 1. **Conservation every window** — at each window boundary the fleet
//!    is quiescent and `submitted == completed + rejected + expired +
//!    failed + redirected`, plus the router-vs-replica cross-check.
//! 2. **Bounded memory** — the scratch-arena pool's high-water mark
//!    ([`sf_tensor::scratch::pool_stats`]) must plateau: the final peak
//!    is already reached in the first quarter of the run. Monotonic
//!    growth here is a leak the conservation counters cannot see.
//! 3. **Breaker schedule** — exactly the sources given fault bursts trip
//!    their per-source circuit breakers, and every tripped breaker has
//!    recovered (closed) by the end of the run; burst-free sources never
//!    trip.
//! 4. **Bit-identical replay** — two runs of the same config produce the
//!    same [`SoakReport::fingerprint`] (wall-clock and scratch values are
//!    excluded; everything routed, served and tripped is included).
//!
//! # Examples
//!
//! ```
//! use sf_chaos::SoakConfig;
//!
//! let config = SoakConfig::smoke().with_seed(11);
//! let report = sf_chaos::run_soak(&config).unwrap();
//! assert!(report.stats.is_conserved());
//! assert!(report.source_trips.values().sum::<u64>() >= 1);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use sf_core::{
    BreakerConfig, BreakerState, DegradationPolicy, FusionNet, FusionScheme, NetworkConfig,
};
use sf_dataset::RigFrame;
use sf_scene::{Lighting, Occluder, PinholeCamera, Rig, RoadCategory, SceneBuilder, Weather};
use sf_serve::{
    Backpressure, DispatchPolicy, Fleet, FleetConfig, FleetStats, Request, ServeConfig, ServeError,
    SourceId,
};
use sf_tensor::Tensor;

/// A weather change at a scene-clock frame: from `frame` on, the stream
/// renders under `weather` (until a later front takes over).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeatherFront {
    /// First frame rendered under this front's weather.
    pub frame: u64,
    /// The weather the front brings.
    pub weather: Weather,
}

/// A per-source sensor outage: for `frames` frames starting at `frame`,
/// the mount tagged `source` submits all-zero depth (a dead sensor), so
/// its slot breaker must trip — and recover once the burst passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultBurst {
    /// The [`SourceId`] whose sensor dies.
    pub source: u64,
    /// First dead frame.
    pub frame: u64,
    /// Length of the outage in frames.
    pub frames: u64,
}

impl FaultBurst {
    fn active(&self, frame: u64) -> bool {
        frame >= self.frame && frame < self.frame + self.frames
    }
}

/// A seeded long-haul scenario: the scene, the rig, the schedules, and
/// the fleet shape to drive with them.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakConfig {
    /// Master seed: the scene, occluder convoy, per-mount scan streams
    /// and routing scores all derive from it.
    pub seed: u64,
    /// Scene-clock frames to run.
    pub frames: u64,
    /// Frames per assertion window (conservation + cross-check at every
    /// window boundary).
    pub window: u64,
    /// Fleet replicas.
    pub replicas: usize,
    /// The multi-LiDAR rig; each mount becomes its own [`SourceId`]
    /// stream at the fleet.
    pub rig: Rig,
    /// Moving occluder vehicles in the scene.
    pub occluders: usize,
    /// Weather schedule, sorted by frame; frames before the first front
    /// are clear.
    pub fronts: Vec<WeatherFront>,
    /// Per-source dead-sensor bursts.
    pub bursts: Vec<FaultBurst>,
    /// Per-replica batch-size bound.
    pub max_batch: usize,
    /// Per-replica queue capacity (must cover one frame's rig fan-out).
    pub queue_capacity: usize,
    /// Per-source circuit breaker bank on every replica.
    pub breaker: BreakerConfig,
    /// Depth densification iterations per mount image.
    pub fill_iterations: usize,
    /// Enforce the scratch-peak plateau (invariant 2). The counter is
    /// process-global, so tests sharing a process with other scratch
    /// users disable this; the `roadseg soak` CLI always checks it.
    pub check_memory: bool,
}

impl SoakConfig {
    /// The full long-haul recipe: 2000 frames, a 3-mount rig, four
    /// weather fronts and two fault bursts on the left-pod source.
    pub fn full() -> SoakConfig {
        let frames = 2000;
        SoakConfig {
            seed: 0x50A4_0001 ^ 0x2022,
            frames,
            window: 200,
            replicas: 3,
            // The full ray budget is wasted on a 48x16 serving frame;
            // trimming it keeps the long haul minutes-scale without
            // changing any code path.
            rig: Rig::triple().with_resolution(24, 72),
            occluders: 3,
            fronts: vec![
                WeatherFront {
                    frame: frames / 4,
                    weather: Weather::rain(0.5),
                },
                WeatherFront {
                    frame: frames / 2,
                    weather: Weather::fog(0.8),
                },
                WeatherFront {
                    frame: 3 * frames / 4,
                    weather: Weather::snow(0.7),
                },
            ],
            bursts: vec![
                // Early burst: the scratch pool must already be at its
                // final size before the plateau checkpoint, and the
                // breaker must trip and recover long before shutdown.
                FaultBurst {
                    source: 1,
                    frame: frames / 10,
                    frames: 12,
                },
                FaultBurst {
                    source: 1,
                    frame: 3 * frames / 5,
                    frames: 12,
                },
            ],
            max_batch: 4,
            queue_capacity: 16,
            breaker: BreakerConfig {
                window: 4,
                min_samples: 4,
                trip_threshold: 0.5,
                cooldown: 4,
                success_probes: 2,
                probe_chance: 1.0,
                seed: 23,
            },
            fill_iterations: 2,
            check_memory: true,
        }
    }

    /// A CI-sized reduction (240 frames, 40-frame windows) that still
    /// rolls a weather front through, runs a dead-sensor burst and
    /// checks every invariant.
    pub fn smoke() -> SoakConfig {
        let frames = 240;
        SoakConfig {
            frames,
            window: 40,
            rig: Rig::triple().with_resolution(12, 48),
            fronts: vec![WeatherFront {
                frame: frames / 3,
                weather: Weather::fog(0.7),
            }],
            bursts: vec![FaultBurst {
                source: 1,
                frame: frames / 10,
                frames: 10,
            }],
            ..SoakConfig::full()
        }
    }

    /// Returns the config with a different seed (chainable).
    pub fn with_seed(mut self, seed: u64) -> SoakConfig {
        self.seed = seed;
        self
    }

    /// Returns the config with a different rig (chainable). Burst
    /// sources outside the new rig are dropped.
    pub fn with_rig(mut self, rig: Rig) -> SoakConfig {
        self.bursts
            .retain(|b| rig.mounts().iter().any(|m| m.source == b.source));
        self.rig = rig;
        self
    }

    /// Returns the config with one constant weather condition instead of
    /// the scheduled fronts (chainable).
    pub fn with_constant_weather(mut self, weather: Weather) -> SoakConfig {
        self.fronts = vec![WeatherFront { frame: 0, weather }];
        self
    }

    /// The weather in effect at `frame`: the latest front at or before
    /// it, clear before the first front.
    pub fn weather_at(&self, frame: u64) -> Weather {
        self.fronts
            .iter()
            .filter(|f| f.frame <= frame)
            .max_by_key(|f| f.frame)
            .map_or(Weather::clear(), |f| f.weather)
    }

    /// Checks that the scenario is runnable and its assertions are
    /// decidable (bursts end before the run does, every burst source is
    /// a rig mount, one frame's fan-out fits the queue, ...).
    ///
    /// # Errors
    ///
    /// Returns [`SoakError::Config`] describing the first problem.
    pub fn validate(&self) -> Result<(), SoakError> {
        let config = |reason: String| SoakError::Config { reason };
        if self.frames == 0 || self.window == 0 {
            return Err(config("frames and window must be >= 1".into()));
        }
        if self.frames < 2 * self.window {
            return Err(config(format!(
                "{} frames is fewer than two {}-frame windows: the plateau check \
                 needs an early window to compare against",
                self.frames, self.window
            )));
        }
        if self.replicas == 0 {
            return Err(config("the fleet needs at least one replica".into()));
        }
        if self.rig.is_empty() {
            return Err(config("the rig needs at least one mount".into()));
        }
        if self.max_batch == 0 || self.queue_capacity < self.rig.len() {
            return Err(config(format!(
                "queue_capacity {} cannot hold one frame's {} rig submissions",
                self.queue_capacity,
                self.rig.len()
            )));
        }
        if let Err(reason) = self.breaker.validate() {
            return Err(config(reason));
        }
        for burst in &self.bursts {
            if !self.rig.mounts().iter().any(|m| m.source == burst.source) {
                return Err(config(format!(
                    "fault burst targets source {} but the rig has no such mount",
                    burst.source
                )));
            }
            if burst.frames == 0 {
                return Err(config("a fault burst needs at least one frame".into()));
            }
            // The breaker must have healthy frames left to recover in.
            if burst.frame + burst.frames + 8 * u64::from(self.breaker.window as u32) > self.frames
            {
                return Err(config(format!(
                    "fault burst at frame {} runs too close to the end ({} frames): \
                     the tripped breaker has no room to recover",
                    burst.frame, self.frames
                )));
            }
        }
        let mut last = 0;
        for front in &self.fronts {
            if front.frame < last {
                return Err(config("weather fronts must be sorted by frame".into()));
            }
            last = front.frame;
        }
        Ok(())
    }
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig::full()
    }
}

/// One assertion window's summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSummary {
    /// Last frame included in the window.
    pub end_frame: u64,
    /// Fleet legs submitted so far (cumulative).
    pub submitted: u64,
    /// Fleet legs completed so far (cumulative).
    pub completed: u64,
    /// Scratch-pool high-water mark at the boundary, bytes.
    pub scratch_peak_bytes: usize,
    /// Weather in effect at the boundary.
    pub weather: Weather,
}

/// Outcome of a soak run that satisfied every invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// Final fleet statistics (conserved and cross-checked).
    pub stats: FleetStats,
    /// Frames driven.
    pub frames: u64,
    /// Window-boundary summaries, in order.
    pub windows: Vec<WindowSummary>,
    /// Index of the first window whose scratch peak equals the final
    /// peak (the plateau point).
    pub plateau_window: usize,
    /// Breaker trips per [`SourceId`], summed over replicas.
    pub source_trips: BTreeMap<u64, u64>,
}

impl SoakReport {
    /// A canonical string over everything that must replay bit-identically
    /// across runs of the same config: the fleet leg tally, per-replica
    /// terminal counters and per-source breaker trips. Deliberately
    /// excludes wall-clock values and scratch byte counts (both are
    /// thread-scheduling dependent).
    pub fn fingerprint(&self) -> String {
        let s = &self.stats;
        let mut out = format!(
            "soak[{} frames] legs[submitted {} = completed {} + rejected {} + expired {} \
             + failed {} + redirected {}]",
            self.frames, s.submitted, s.completed, s.rejected, s.expired, s.failed, s.redirected,
        );
        for (source, trips) in &self.source_trips {
            out.push_str(&format!(" src{source}:trips={trips}"));
        }
        for r in &s.replicas {
            out.push_str(&format!(
                " | r{} sub={} comp={} rej={} exp={} fail={} trips={}",
                r.index, r.submitted, r.completed, r.rejected, r.expired, r.failed, r.breaker_trips,
            ));
        }
        out
    }

    /// Multi-line human rendering for the CLI and the experiment sweep.
    pub fn render(&self) -> String {
        let s = &self.stats;
        let mut out = format!(
            "  {} frames, {} windows: submitted {} = completed {} + rejected {} + expired {} \
             + failed {} + redirected {}\n",
            self.frames,
            self.windows.len(),
            s.submitted,
            s.completed,
            s.rejected,
            s.expired,
            s.failed,
            s.redirected,
        );
        out.push_str(&format!(
            "  scratch peak {} KiB, plateaued at window {} of {}\n",
            self.windows.last().map_or(0, |w| w.scratch_peak_bytes) / 1024,
            self.plateau_window + 1,
            self.windows.len(),
        ));
        for (source, trips) in &self.source_trips {
            out.push_str(&format!("  source {source}: {trips} breaker trip(s)\n"));
        }
        for w in &self.windows {
            out.push_str(&format!(
                "  window ..{:>5}  weather {:<9}  completed {:>6}  scratch peak {:>6} KiB\n",
                w.end_frame,
                w.weather.to_string(),
                w.completed,
                w.scratch_peak_bytes / 1024,
            ));
        }
        out
    }
}

/// A broken soak invariant (or an unrunnable scenario). Any of these
/// from a run is a bug in the serving stack, not in the schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum SoakError {
    /// The scenario itself is invalid.
    Config {
        /// Human-readable reason.
        reason: String,
    },
    /// A frame's request terminated in a way the scenario cannot explain.
    UnexpectedOutcome {
        /// Scene-clock frame of the submission.
        frame: u64,
        /// The mount's source id.
        source: u64,
        /// The offending error.
        error: ServeError,
    },
    /// A window boundary found the fleet counters not conserved.
    NotConserved {
        /// Which window (0-based).
        window: usize,
        /// The failing tally, rendered.
        detail: String,
    },
    /// A window boundary failed the router-vs-replica cross-check.
    CrossCheck {
        /// Which window (0-based).
        window: usize,
        /// The failing identity, rendered.
        detail: String,
    },
    /// The scratch pool's high-water mark kept growing instead of
    /// plateauing — a leak the counters cannot see.
    MemoryGrowth {
        /// Human-readable description.
        detail: String,
    },
    /// The breaker record does not match the injected burst schedule.
    BreakerSchedule {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for SoakError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoakError::Config { reason } => write!(f, "invalid soak config: {reason}"),
            SoakError::UnexpectedOutcome {
                frame,
                source,
                error,
            } => write!(
                f,
                "soak frame {frame} source {source}: unexpected outcome: {error}"
            ),
            SoakError::NotConserved { window, detail } => {
                write!(f, "window {window}: legs not conserved: {detail}")
            }
            SoakError::CrossCheck { window, detail } => {
                write!(f, "window {window}: cross-check failed: {detail}")
            }
            SoakError::MemoryGrowth { detail } => {
                write!(f, "scratch pool did not plateau: {detail}")
            }
            SoakError::BreakerSchedule { detail } => {
                write!(f, "breaker record does not match burst schedule: {detail}")
            }
        }
    }
}

impl std::error::Error for SoakError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SoakError::UnexpectedOutcome { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Runs the soak scenario and checks every invariant. See the module
/// docs for the invariant list.
///
/// # Errors
///
/// Returns the first [`SoakError`] encountered.
pub fn run_soak(config: &SoakConfig) -> Result<SoakReport, SoakError> {
    config.validate()?;
    let net_config = NetworkConfig::tiny();
    let net =
        FusionNet::new(FusionScheme::AllFilterU, &net_config).map_err(|e| SoakError::Config {
            reason: format!("cannot build soak net: {e}"),
        })?;
    let serve = ServeConfig::builder()
        .max_batch(config.max_batch)
        .queue_capacity(config.queue_capacity)
        .backpressure(Backpressure::Reject)
        .max_wait(Duration::ZERO)
        .policy(DegradationPolicy::CameraFallback)
        .default_deadline(Duration::from_secs(30))
        .breaker(config.breaker)
        .build()
        .map_err(|e| SoakError::Config {
            reason: format!("replica server rejected soak config: {e}"),
        })?;
    let fleet = Fleet::start(
        net,
        FleetConfig {
            replicas: config.replicas,
            dispatch: DispatchPolicy::ConsistentHash,
            seed: config.seed,
            serve,
            // Sources stay pinned to their rendezvous replica even while
            // their breaker is open, so the burst's failure observations
            // all land on one slot and replay exactly.
            route_around_open_breakers: false,
            ..FleetConfig::default()
        },
    )
    .map_err(|e| SoakError::Config {
        reason: format!("fleet rejected soak config: {e}"),
    })?;

    // The world: one procedural scene observed for the whole run, with a
    // seeded occluder convoy advancing on the scene clock.
    let scene = SceneBuilder::new(RoadCategory::UrbanMarked, config.seed).build();
    let camera = PinholeCamera::kitti_like(net_config.width, net_config.height);
    let occluders = Occluder::convoy(&scene, config.occluders, config.seed);
    let depth_shape = [
        net_config.depth_channels,
        net_config.height,
        net_config.width,
    ];

    let mut windows: Vec<WindowSummary> = Vec::new();
    let mut drive = || -> Result<(), SoakError> {
        for frame in 0..config.frames {
            let weather = config.weather_at(frame);
            let frame_scene = scene.with_occluders(&occluders, frame);
            let rendered = RigFrame::render(
                &frame_scene,
                &camera,
                Lighting::day(),
                weather,
                &config.rig,
                config.seed,
                frame,
                config.fill_iterations,
            );
            // Fan the frame out: one tagged request per mount, then wait
            // them all — the stream is closed-loop per frame, so window
            // boundaries observe a quiescent fleet.
            let mut completions = Vec::with_capacity(rendered.depths.len());
            for (source, depth) in rendered.depths {
                let dead = config
                    .bursts
                    .iter()
                    .any(|b| b.source == source && b.active(frame));
                let depth = if dead {
                    Tensor::zeros(&depth_shape)
                } else {
                    depth
                };
                let request =
                    Request::new(rendered.rgb.clone(), depth).with_source(SourceId(source));
                let completion =
                    fleet
                        .submit(request)
                        .map_err(|error| SoakError::UnexpectedOutcome {
                            frame,
                            source,
                            error,
                        })?;
                completions.push((source, completion));
            }
            for (source, completion) in completions {
                let prediction =
                    completion
                        .wait()
                        .map_err(|error| SoakError::UnexpectedOutcome {
                            frame,
                            source,
                            error,
                        })?;
                // Return the frame's buffers to the scratch pool so the
                // stream reuses them instead of allocating fresh ones —
                // this is what makes the pool's high-water mark a real
                // bounded-memory probe: it grows while new buffer shapes
                // appear, then plateaus at steady state.
                sf_tensor::scratch::recycle(prediction.prob.into_vec());
            }
            sf_tensor::scratch::recycle(rendered.rgb.into_vec());
            if (frame + 1) % config.window == 0 || frame + 1 == config.frames {
                // The fleet-side counters settled inside wait(); the
                // replica-side ones are written by the executors just
                // after fulfilling, so give them a moment to catch up
                // before reconciling (bounded — a real loss stays
                // visible).
                let mut stats = fleet.stats();
                for _ in 0..500 {
                    if stats.is_conserved() && stats.cross_check().is_ok() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                    stats = fleet.stats();
                }
                let window = windows.len();
                if !stats.is_conserved() {
                    return Err(SoakError::NotConserved {
                        window,
                        detail: format!(
                            "{} submitted vs {} completed + {} rejected + {} expired \
                             + {} failed + {} redirected",
                            stats.submitted,
                            stats.completed,
                            stats.rejected,
                            stats.expired,
                            stats.failed,
                            stats.redirected
                        ),
                    });
                }
                stats
                    .cross_check()
                    .map_err(|detail| SoakError::CrossCheck { window, detail })?;
                windows.push(WindowSummary {
                    end_frame: frame,
                    submitted: stats.submitted,
                    completed: stats.completed,
                    scratch_peak_bytes: sf_tensor::scratch::pool_stats().peak_bytes,
                    weather,
                });
            }
        }
        Ok(())
    };
    let drive_result = drive();
    let (_net, stats) = fleet.shutdown();
    drive_result?;

    // Invariant 2: the scratch high-water mark plateaus in the first
    // quarter of the run.
    let final_peak = windows.last().map_or(0, |w| w.scratch_peak_bytes);
    let plateau_window = windows
        .iter()
        .position(|w| w.scratch_peak_bytes == final_peak)
        .unwrap_or(0);
    if config.check_memory {
        let budget = windows.len().div_ceil(4).max(1) - 1;
        if plateau_window > budget {
            return Err(SoakError::MemoryGrowth {
                detail: format!(
                    "final scratch peak {final_peak} B first reached at window {} of {}, \
                     past the first-quarter budget (window {}); peaks: {:?}",
                    plateau_window + 1,
                    windows.len(),
                    budget + 1,
                    windows
                        .iter()
                        .map(|w| w.scratch_peak_bytes)
                        .collect::<Vec<_>>()
                ),
            });
        }
    }

    // Invariant 3: trips happened exactly where the schedule injected
    // them, and every tripped breaker recovered.
    let mut source_trips: BTreeMap<u64, u64> =
        config.rig.mounts().iter().map(|m| (m.source, 0)).collect();
    for replica in &stats.replicas {
        for slot in &replica.breaker_slots {
            if let Some(SourceId(source)) = slot.source {
                *source_trips.entry(source).or_insert(0) += slot.trips;
                if slot.trips > 0 && slot.state != BreakerState::Closed {
                    return Err(SoakError::BreakerSchedule {
                        detail: format!(
                            "source {source} breaker on replica {} ended {:?}, \
                             expected Closed after recovery",
                            replica.index, slot.state
                        ),
                    });
                }
            }
        }
    }
    for (&source, &trips) in &source_trips {
        let scheduled = config.bursts.iter().any(|b| b.source == source);
        if scheduled && trips == 0 {
            return Err(SoakError::BreakerSchedule {
                detail: format!("source {source} had a fault burst but never tripped"),
            });
        }
        if !scheduled && trips > 0 {
            return Err(SoakError::BreakerSchedule {
                detail: format!("source {source} tripped {trips} time(s) with no burst scheduled"),
            });
        }
    }

    Ok(SoakReport {
        stats,
        frames: config.frames,
        windows,
        plateau_window,
        source_trips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test-sized scenario. Memory checking is off because the scratch
    /// counter is process-global and other tests in this binary also use
    /// the pool; `roadseg soak` (its own process) asserts it.
    fn test_config() -> SoakConfig {
        SoakConfig {
            frames: 60,
            window: 15,
            rig: Rig::dual().with_resolution(8, 32),
            occluders: 2,
            fronts: vec![WeatherFront {
                frame: 20,
                weather: Weather::rain(0.6),
            }],
            bursts: vec![FaultBurst {
                source: 1,
                frame: 6,
                frames: 8,
            }],
            check_memory: false,
            ..SoakConfig::full()
        }
    }

    #[test]
    fn soak_conserves_and_replays_bit_identically() {
        let config = test_config();
        let a = run_soak(&config).expect("soak run a");
        let b = run_soak(&config).expect("soak run b");
        assert!(a.stats.is_conserved());
        a.stats.cross_check().unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.windows.len(), 4);
        // Every frame fans out one leg per mount.
        assert_eq!(a.stats.completed, 60 * 2);
    }

    #[test]
    fn burst_source_trips_and_recovers_while_others_stay_closed() {
        let report = run_soak(&test_config()).expect("soak run");
        assert!(report.source_trips[&1] >= 1, "{:?}", report.source_trips);
        assert_eq!(report.source_trips[&0], 0, "{:?}", report.source_trips);
        // run_soak itself asserts recovery (final state Closed); reaching
        // here means the cycle completed.
        let text = report.render();
        assert!(text.contains("source 1"), "{text}");
        assert!(text.contains("rain:0.6"), "{text}");
    }

    #[test]
    fn different_seeds_change_the_fingerprint_tally_or_not_the_laws() {
        let a = run_soak(&test_config()).expect("seed a");
        let b = run_soak(&test_config().with_seed(99)).expect("seed b");
        // Conservation holds under any seed; the exact fingerprint need
        // not match across seeds (routing scores move).
        assert!(a.stats.is_conserved() && b.stats.is_conserved());
    }

    #[test]
    fn validation_rejects_undecidable_scenarios() {
        let ok = test_config();
        assert!(ok.validate().is_ok());
        let no_mount = SoakConfig {
            bursts: vec![FaultBurst {
                source: 9,
                frame: 6,
                frames: 4,
            }],
            ..test_config()
        };
        assert!(matches!(no_mount.validate(), Err(SoakError::Config { .. })));
        let late_burst = SoakConfig {
            bursts: vec![FaultBurst {
                source: 1,
                frame: 58,
                frames: 4,
            }],
            ..test_config()
        };
        assert!(late_burst.validate().is_err());
        let tiny_queue = SoakConfig {
            queue_capacity: 1,
            ..test_config()
        };
        assert!(tiny_queue.validate().is_err());
        let short = SoakConfig {
            frames: 10,
            window: 15,
            bursts: Vec::new(),
            ..test_config()
        };
        assert!(short.validate().is_err());
        assert!(SoakConfig::full().validate().is_ok());
        assert!(SoakConfig::smoke().validate().is_ok());
    }

    #[test]
    fn weather_fronts_resolve_by_frame() {
        let config = SoakConfig::full();
        assert!(config.weather_at(0).is_clear());
        assert_eq!(config.weather_at(500), Weather::rain(0.5));
        assert_eq!(config.weather_at(1999), Weather::snow(0.7));
        let constant = config.with_constant_weather(Weather::fog(0.3));
        assert_eq!(constant.weather_at(0), Weather::fog(0.3));
        assert_eq!(constant.weather_at(1999), Weather::fog(0.3));
    }
}
