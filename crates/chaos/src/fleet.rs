//! Fleet-level chaos: seeded failure schedules against a replica [`Fleet`].
//!
//! The single-server harness in the crate root proves one executor never
//! loses a request; this module proves the *router* never loses a leg.
//! A [`FleetChaosConfig`] drives a real [`Fleet`] through an ordered list
//! of [`FleetScene`]s — healthy tagged traffic, a dying depth sensor on
//! one source, replica kill storms (optionally with a hot model deploy
//! mid-storm), explicit revivals, and shadow deploys of a bit-identical
//! candidate — all closed-loop and seeded, so every routing decision,
//! breaker observation and redirect replays exactly.
//!
//! Every run asserts, in addition to the single-server invariants:
//!
//! 1. **Fleet conservation** — `submitted == completed + rejected +
//!    expired + failed + redirected` over routing legs
//!    ([`FleetStats::is_conserved`]).
//! 2. **Router-vs-replica reconciliation** — the fleet's leg counters
//!    reconcile exactly with the per-replica server counters
//!    ([`FleetStats::cross_check`]).
//! 3. **Zero deploy casualties** — no leg terminally fails during a
//!    scene that hot-swaps the model; a failure there is a
//!    [`FleetChaosError::DeployRegression`].
//! 4. **Shadow fidelity** — a shadow deploy whose candidate is built
//!    from the live model's seed must diff bitwise-zero and promote.
//!
//! Two runs of the same config produce bit-identical
//! [`FleetChaosReport::fingerprint`]s.
//!
//! # Examples
//!
//! ```
//! use sf_chaos::{parse_fleet_scenes, run_fleet, FleetChaosConfig};
//!
//! let config = FleetChaosConfig::default()
//!     .with_seed(7)
//!     .with_scenes(parse_fleet_scenes("calm:3,storm:2,revive:1").unwrap());
//! let report = run_fleet(&config).unwrap();
//! assert!(report.stats.is_conserved());
//! assert_eq!(report.kills, 1);
//! assert_eq!(report.revives, 1);
//! ```

use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use sf_core::{BreakerConfig, DegradationPolicy, FusionNet, FusionScheme, NetworkConfig};
use sf_serve::{
    Backpressure, BatchProbe, DeployOptions, DispatchPolicy, Fleet, FleetConfig, FleetStats,
    Prediction, Request, ServeConfig, ServeError, ShadowConfig, SourceId,
};
use sf_tensor::{Tensor, TensorRng};

/// The tagged source whose depth sensor dies in [`FleetScene::Corrupt`];
/// kept out of the healthy rotation so one bad sensor trips only its own
/// slot breaker.
const FAULTY_SOURCE: SourceId = SourceId(99);
/// Healthy traffic rotates over this many tagged sources.
const HEALTHY_SOURCES: u64 = 8;
/// Holder requests (which park executors during storms) draw their
/// sources from here up, away from both traffic ranges.
const HOLDER_SOURCE_BASE: u64 = 1_000;

/// One phase of a fleet chaos schedule. Scenes run in order; traffic is
/// closed-loop except during storms, which flood parked executors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetScene {
    /// Healthy tagged traffic, submit-and-wait.
    Calm {
        /// Closed-loop requests to serve.
        requests: usize,
    },
    /// One source's depth sensor goes dark (all-zero frames): its slot
    /// quarantines and its breaker trips without dragging healthy
    /// sources down.
    Corrupt {
        /// Closed-loop dead-depth requests from [`FAULTY_SOURCE`].
        requests: usize,
    },
    /// Replica kill storm: park every routable replica's executor with a
    /// holder request, flood `flood` tagged requests into the queues,
    /// kill `kill` replicas, optionally hot-deploy a retrained model
    /// mid-storm, then release. Queued work on the victims is aborted
    /// and must be redirected — never terminally failed.
    KillStorm {
        /// Replicas to kill (lowest alive indices first).
        kill: usize,
        /// Requests flooded into the parked queues.
        flood: usize,
        /// Hot-swap a retrained model while the storm is in flight.
        deploy: bool,
    },
    /// Revive every dead replica from the fleet's live model, then serve
    /// tagged traffic (under consistent hashing the revived replica's
    /// keys come home).
    Revive {
        /// Closed-loop requests after the revivals.
        requests: usize,
    },
    /// Shadow-deploy a candidate built from the live model's seed while
    /// serving: every mirrored diff must be bitwise zero and the
    /// candidate must promote.
    ShadowDeploy {
        /// Closed-loop requests mirrored to the candidate.
        requests: usize,
    },
}

impl FleetScene {
    fn request_count(&self) -> usize {
        match self {
            FleetScene::Calm { requests }
            | FleetScene::Corrupt { requests }
            | FleetScene::Revive { requests }
            | FleetScene::ShadowDeploy { requests } => *requests,
            FleetScene::KillStorm { flood, .. } => *flood,
        }
    }
}

impl fmt::Display for FleetScene {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetScene::Calm { requests } => write!(f, "calm:{requests}"),
            FleetScene::Corrupt { requests } => write!(f, "corrupt:{requests}"),
            FleetScene::KillStorm {
                kill,
                flood,
                deploy: false,
            } => write!(f, "storm(kill {kill}):{flood}"),
            FleetScene::KillStorm {
                kill,
                flood,
                deploy: true,
            } => write!(f, "deploystorm(kill {kill}):{flood}"),
            FleetScene::Revive { requests } => write!(f, "revive:{requests}"),
            FleetScene::ShadowDeploy { requests } => write!(f, "shadow:{requests}"),
        }
    }
}

/// Parses a comma-separated fleet scene list, e.g.
/// `calm:4,storm:3,revive:2,deploystorm:3,shadow:4`. Kinds: `calm`,
/// `corrupt` (dead depth on one source), `storm` (kill 1 replica,
/// flood N), `deploystorm` (storm plus a mid-storm hot deploy),
/// `revive`, `shadow` (shadow deploy of an identical candidate).
///
/// # Errors
///
/// Returns a human-readable message naming the offending element.
pub fn parse_fleet_scenes(spec: &str) -> Result<Vec<FleetScene>, String> {
    spec.split(',')
        .map(|part| {
            let part = part.trim();
            let (kind, count) = part
                .split_once(':')
                .ok_or_else(|| format!("scene '{part}' is not of the form kind:count"))?;
            let n: usize = count
                .parse()
                .map_err(|_| format!("scene '{part}': '{count}' is not a count"))?;
            if n == 0 {
                return Err(format!("scene '{part}': count must be >= 1"));
            }
            match kind {
                "calm" => Ok(FleetScene::Calm { requests: n }),
                "corrupt" => Ok(FleetScene::Corrupt { requests: n }),
                "storm" => Ok(FleetScene::KillStorm {
                    kill: 1,
                    flood: n,
                    deploy: false,
                }),
                "deploystorm" => Ok(FleetScene::KillStorm {
                    kill: 1,
                    flood: n,
                    deploy: true,
                }),
                "revive" => Ok(FleetScene::Revive { requests: n }),
                "shadow" => Ok(FleetScene::ShadowDeploy { requests: n }),
                other => Err(format!(
                    "unknown fleet scene kind '{other}' \
                     (expected calm|corrupt|storm|deploystorm|revive|shadow)"
                )),
            }
        })
        .collect()
}

/// A seeded fleet fault schedule plus the fleet shape it runs against.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetChaosConfig {
    /// Master seed: frames, routing scores and breaker probes all derive
    /// from it.
    pub seed: u64,
    /// Replica count (≥ 1).
    pub replicas: usize,
    /// Routing policy under test.
    pub dispatch: DispatchPolicy,
    /// Ordered fault schedule.
    pub scenes: Vec<FleetScene>,
    /// Per-replica served batch-size bound.
    pub max_batch: usize,
    /// Per-replica bounded queue capacity. Must cover the largest storm
    /// flood so a storm never sheds nondeterministically.
    pub queue_capacity: usize,
    /// Default request deadline; generous so live requests never expire
    /// nondeterministically.
    pub default_deadline: Option<Duration>,
    /// Per-slot circuit breaker bank for every replica; `None` disables.
    pub breaker: Option<BreakerConfig>,
}

impl Default for FleetChaosConfig {
    fn default() -> Self {
        FleetChaosConfig {
            seed: 0xF1EE_C4A0,
            replicas: 3,
            dispatch: DispatchPolicy::ConsistentHash,
            scenes: parse_fleet_scenes(
                "calm:6,corrupt:5,storm:4,revive:3,deploystorm:4,shadow:5,calm:4",
            )
            .expect("default fleet scene spec parses"),
            max_batch: 4,
            queue_capacity: 8,
            default_deadline: Some(Duration::from_secs(10)),
            // Small window so a handful of dead-depth frames trips the
            // faulty source's slot breaker inside one Corrupt scene.
            breaker: Some(BreakerConfig {
                window: 4,
                min_samples: 4,
                trip_threshold: 0.5,
                cooldown: 4,
                success_probes: 2,
                probe_chance: 1.0,
                seed: 23,
            }),
        }
    }
}

impl FleetChaosConfig {
    /// Returns the config with a different seed (chainable).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a different schedule (chainable).
    pub fn with_scenes(mut self, scenes: Vec<FleetScene>) -> Self {
        self.scenes = scenes;
        self
    }

    /// Returns the config with a different replica count (chainable).
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Returns the config with a different dispatch policy (chainable).
    pub fn with_dispatch(mut self, dispatch: DispatchPolicy) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// A smoke-sized schedule that still kills, revives, hot-deploys and
    /// shadow-diffs; used by `roadseg chaos --smoke` and CI.
    pub fn smoke(mut self) -> Self {
        self.replicas = 2;
        self.scenes =
            parse_fleet_scenes("calm:2,deploystorm:2,revive:1,shadow:2,calm:1").expect("parses");
        self
    }

    /// Checks the invariants the harness relies on, including that no
    /// storm kills the last replica and that every storm's flood fits
    /// the per-replica queue (a flood that could shed would make the
    /// schedule racy).
    ///
    /// # Errors
    ///
    /// Returns [`FleetChaosError::Config`] describing the first problem.
    pub fn validate(&self) -> Result<(), FleetChaosError> {
        let config = |reason: String| FleetChaosError::Config { reason };
        if self.replicas == 0 {
            return Err(config("fleet chaos needs at least one replica".into()));
        }
        if self.scenes.is_empty() {
            return Err(config("fleet chaos schedule has no scenes".into()));
        }
        if self.max_batch == 0 || self.queue_capacity == 0 {
            return Err(config("max_batch and queue_capacity must be >= 1".into()));
        }
        if self.default_deadline == Some(Duration::ZERO) {
            return Err(config("a zero default deadline expires everything".into()));
        }
        if let Some(breaker) = &self.breaker {
            if let Err(reason) = breaker.validate() {
                return Err(config(reason));
            }
        }
        let mut alive = self.replicas;
        for scene in &self.scenes {
            if scene.request_count() == 0 {
                return Err(config("every scene needs a count >= 1".into()));
            }
            match scene {
                FleetScene::KillStorm { kill, flood, .. } => {
                    if *kill == 0 {
                        return Err(config("a storm must kill at least one replica".into()));
                    }
                    if *flood > self.queue_capacity {
                        return Err(config(format!(
                            "storm flood {flood} exceeds queue_capacity {}: \
                             a flood that can shed is nondeterministic",
                            self.queue_capacity
                        )));
                    }
                    if *kill >= alive {
                        return Err(config(format!(
                            "storm would kill {kill} of {alive} alive replicas, \
                             leaving none to redirect to"
                        )));
                    }
                    alive -= kill;
                }
                FleetScene::Revive { .. } => alive = self.replicas,
                _ => {}
            }
        }
        Ok(())
    }
}

/// Outcome of a fleet chaos run that satisfied every invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetChaosReport {
    /// Final fleet statistics (conserved and cross-checked).
    pub stats: FleetStats,
    /// Replica kills the schedule performed.
    pub kills: u64,
    /// Replica revivals the schedule performed.
    pub revives: u64,
}

impl FleetChaosReport {
    /// A canonical string over everything that must be bit-reproducible
    /// across runs of the same config: the fleet leg tally, deploy
    /// ledger, shadow diff bound and the per-replica terminal counters.
    /// Deliberately excludes wall-clock-dependent values (latency,
    /// per-replica batch counts, swap claim timing).
    pub fn fingerprint(&self) -> String {
        let s = &self.stats;
        let mut out = format!(
            "fleet[submitted {} = completed {} + rejected {} + expired {} + failed {} \
             + redirected {}] no_replica={} model=v{} deploys={} promotions={} aborts={} \
             shadow[{} samples, max_delta {:e}] kills={} revives={}",
            s.submitted,
            s.completed,
            s.rejected,
            s.expired,
            s.failed,
            s.redirected,
            s.no_replica,
            s.model_version,
            s.deploys,
            s.promotions,
            s.deploy_aborts,
            s.shadow_samples,
            s.shadow_max_delta,
            self.kills,
            self.revives,
        );
        for r in &s.replicas {
            out.push_str(&format!(
                " | r{}:{} inc={} sub={} comp={} rej={} exp={} fail={} trips={}",
                r.index,
                if r.alive { "alive" } else { "dead" },
                r.incarnations,
                r.submitted,
                r.completed,
                r.rejected,
                r.expired,
                r.failed,
                r.breaker_trips,
            ));
        }
        out
    }

    /// Multi-line human rendering for the CLI and the experiment sweep.
    pub fn render(&self) -> String {
        let s = &self.stats;
        let mut out = format!(
            "  legs: submitted {} = completed {} + rejected {} + expired {} + failed {} \
             + redirected {}  (no_replica {})\n",
            s.submitted, s.completed, s.rejected, s.expired, s.failed, s.redirected, s.no_replica
        );
        out.push_str(&format!(
            "  model v{}  deploys {}  promotions {}  aborts {}  \
             shadow {} samples (max delta {:e})  kills {}  revives {}\n",
            s.model_version,
            s.deploys,
            s.promotions,
            s.deploy_aborts,
            s.shadow_samples,
            s.shadow_max_delta,
            self.kills,
            self.revives,
        ));
        for r in &s.replicas {
            out.push_str(&format!(
                "  replica {}: {} inc {}  submitted {}  completed {}  rejected {}  \
                 expired {}  failed {}  batches {}  breaker trips {}\n",
                r.index,
                if r.alive { "alive" } else { "dead " },
                r.incarnations,
                r.submitted,
                r.completed,
                r.rejected,
                r.expired,
                r.failed,
                r.batches,
                r.breaker_trips,
            ));
        }
        out
    }
}

/// A broken fleet invariant (or an unrunnable config). Any of these from
/// a run is a bug in the fleet, not in the schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetChaosError {
    /// The schedule itself is invalid.
    Config {
        /// Human-readable reason.
        reason: String,
    },
    /// A request terminated in a way the schedule cannot explain.
    UnexpectedOutcome {
        /// Which scene observed it.
        scene: String,
        /// The offending error.
        error: ServeError,
    },
    /// The fleet's leg counters do not satisfy the conservation law.
    NotConserved {
        /// The failing tally, rendered.
        detail: String,
    },
    /// The fleet counters do not reconcile with the per-replica server
    /// counters.
    CrossCheck {
        /// The failing identity, rendered.
        detail: String,
    },
    /// A hot deploy caused a failure it promised not to: a leg failed
    /// during a deploy scene, a bit-identical shadow diffed nonzero, or
    /// a clean shadow failed to promote.
    DeployRegression {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for FleetChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetChaosError::Config { reason } => {
                write!(f, "invalid fleet chaos config: {reason}")
            }
            FleetChaosError::UnexpectedOutcome { scene, error } => {
                write!(f, "fleet scene {scene}: unexpected outcome: {error}")
            }
            FleetChaosError::NotConserved { detail } => {
                write!(f, "fleet legs not conserved: {detail}")
            }
            FleetChaosError::CrossCheck { detail } => {
                write!(f, "router-vs-replica cross-check failed: {detail}")
            }
            FleetChaosError::DeployRegression { detail } => {
                write!(f, "hot deploy regression: {detail}")
            }
        }
    }
}

impl std::error::Error for FleetChaosError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetChaosError::UnexpectedOutcome { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Shared batch probe that parks executors during storms. Replicas all
/// clone the same probe; each holder batch consumes one hold and parks
/// until [`HoldPlan::release_all`].
#[derive(Default)]
struct HoldPlan {
    holds: Mutex<usize>,
    held: Mutex<bool>,
    release: Condvar,
}

impl HoldPlan {
    fn engage(&self) {
        *self.held.lock().expect("hold plan poisoned") = true;
    }

    fn add_hold(&self) {
        *self.holds.lock().expect("hold plan poisoned") += 1;
    }

    fn release_all(&self) {
        *self.holds.lock().expect("hold plan poisoned") = 0;
        *self.held.lock().expect("hold plan poisoned") = false;
        self.release.notify_all();
    }

    fn probe(self: &Arc<Self>) -> BatchProbe {
        let plan = Arc::clone(self);
        BatchProbe::new(move |_batch| {
            let should_park = {
                let mut holds = plan.holds.lock().expect("hold plan poisoned");
                if *holds > 0 {
                    *holds -= 1;
                    true
                } else {
                    false
                }
            };
            if should_park {
                let mut held = plan.held.lock().expect("hold plan poisoned");
                while *held {
                    held = plan.release.wait(held).expect("hold plan poisoned");
                }
            }
        })
    }
}

fn frame(rng: &mut TensorRng, net_config: &NetworkConfig) -> (Tensor, Tensor) {
    let (h, w) = (net_config.height, net_config.width);
    (
        rng.uniform(&[3, h, w], 0.0, 1.0),
        rng.uniform(&[net_config.depth_channels, h, w], 0.1, 1.0),
    )
}

fn healthy_source(i: usize) -> SourceId {
    SourceId(i as u64 % HEALTHY_SOURCES)
}

/// Mutable run state threaded through the scenes.
struct RunState {
    rng: TensorRng,
    kills: u64,
    revives: u64,
    /// [`NetworkConfig::seed`] of the model currently live fleet-wide;
    /// shadow candidates rebuild from it so they are bit-identical.
    live_seed: u64,
    /// Legs that terminally failed during deploy scenes (must stay 0).
    deploy_failed_legs: u64,
}

fn expect_served(
    scene: &FleetScene,
    outcome: Result<Prediction, ServeError>,
) -> Result<(), FleetChaosError> {
    match outcome {
        Ok(_) => Ok(()),
        Err(error) => Err(FleetChaosError::UnexpectedOutcome {
            scene: scene.to_string(),
            error,
        }),
    }
}

fn run_fleet_scene(
    fleet: &Fleet,
    scene: &FleetScene,
    scene_index: usize,
    net_config: &NetworkConfig,
    plan: &Arc<HoldPlan>,
    config: &FleetChaosConfig,
    state: &mut RunState,
) -> Result<(), FleetChaosError> {
    let submit_err = |error: ServeError| FleetChaosError::UnexpectedOutcome {
        scene: scene.to_string(),
        error,
    };
    match scene {
        FleetScene::Calm { requests } => {
            for i in 0..*requests {
                let (rgb, depth) = frame(&mut state.rng, net_config);
                let completion = fleet
                    .submit(Request::new(rgb, depth).with_source(healthy_source(i)))
                    .map_err(submit_err)?;
                expect_served(scene, completion.wait())?;
            }
        }
        FleetScene::Corrupt { requests } => {
            let (h, w) = (net_config.height, net_config.width);
            for _ in 0..*requests {
                let (rgb, _) = frame(&mut state.rng, net_config);
                let dead_depth = Tensor::zeros(&[net_config.depth_channels, h, w]);
                let completion = fleet
                    .submit(Request::new(rgb, dead_depth).with_source(FAULTY_SOURCE))
                    .map_err(submit_err)?;
                expect_served(scene, completion.wait())?;
            }
        }
        FleetScene::KillStorm {
            kill,
            flood,
            deploy,
        } => {
            let failed_before = fleet.stats().failed;
            // Park every routable replica with one holder request each.
            // Under consistent hashing the holder's source is searched so
            // its key lands on the uncovered replica; under
            // least-outstanding the unsettled holders spread themselves.
            plan.engage();
            let mut covered = vec![false; config.replicas];
            let mut holders = Vec::new();
            let alive_now = fleet.stats().replicas.iter().filter(|r| r.alive).count();
            let mut key = 0u64;
            while covered.iter().filter(|c| **c).count() < alive_now && key < 4096 {
                let source = SourceId(HOLDER_SOURCE_BASE + key);
                key += 1;
                let Some(target) = fleet.route_preview(Some(source)) else {
                    break;
                };
                if covered[target] {
                    continue;
                }
                let batches_before: Vec<u64> =
                    fleet.stats().replicas.iter().map(|r| r.batches).collect();
                plan.add_hold();
                let (rgb, depth) = frame(&mut state.rng, net_config);
                let completion = fleet
                    .submit(Request::new(rgb, depth).with_source(source))
                    .map_err(submit_err)?;
                let landed = completion.replica();
                if !covered[landed] {
                    // Wait until the holder's batch is claimed and parked,
                    // so the flood below queues instead of executing.
                    while fleet.stats().replicas[landed].batches == batches_before[landed] {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    covered[landed] = true;
                }
                holders.push(completion);
            }
            // Flood the parked queues with tagged traffic.
            let mut floods = Vec::with_capacity(*flood);
            for i in 0..*flood {
                let (rgb, depth) = frame(&mut state.rng, net_config);
                let completion = fleet
                    .submit(Request::new(rgb, depth).with_source(healthy_source(i)))
                    .map_err(submit_err)?;
                floods.push(completion);
            }
            // Kill the lowest alive indices; their queued work must be
            // redirected, never lost.
            let mut killed = 0usize;
            for index in 0..config.replicas {
                if killed == *kill {
                    break;
                }
                if fleet.kill(index) {
                    killed += 1;
                    state.kills += 1;
                }
            }
            // Optionally hot-swap a retrained model while the storm is
            // still in flight: survivors claim it at a batch boundary.
            if *deploy {
                let mut retrained_config = net_config.clone();
                retrained_config.seed =
                    state.live_seed ^ (0xD00D_0000_0000_0001 | (scene_index as u64) << 8);
                let retrained = FusionNet::new(FusionScheme::AllFilterU, &retrained_config)
                    .map_err(|e| FleetChaosError::Config {
                        reason: format!("cannot build retrained net: {e}"),
                    })?;
                fleet
                    .deploy(retrained, DeployOptions::default())
                    .map_err(submit_err)?;
                state.live_seed = retrained_config.seed;
            }
            plan.release_all();
            for holder in holders {
                expect_served(scene, holder.wait())?;
            }
            for completion in floods {
                expect_served(scene, completion.wait())?;
            }
            if *deploy {
                state.deploy_failed_legs += fleet.stats().failed - failed_before;
            }
        }
        FleetScene::Revive { requests } => {
            for index in 0..config.replicas {
                if fleet.revive(index) {
                    state.revives += 1;
                }
            }
            for i in 0..*requests {
                let (rgb, depth) = frame(&mut state.rng, net_config);
                let completion = fleet
                    .submit(Request::new(rgb, depth).with_source(healthy_source(i)))
                    .map_err(submit_err)?;
                expect_served(scene, completion.wait())?;
            }
        }
        FleetScene::ShadowDeploy { requests } => {
            // Rebuild the live model from its seed: a bit-identical
            // candidate, so every mirrored diff must be exactly zero.
            let mut candidate_config = net_config.clone();
            candidate_config.seed = state.live_seed;
            let candidate =
                FusionNet::new(FusionScheme::AllFilterU, &candidate_config).map_err(|e| {
                    FleetChaosError::Config {
                        reason: format!("cannot build shadow candidate: {e}"),
                    }
                })?;
            let required_samples = (*requests as u64).clamp(1, 4);
            let before = fleet.stats();
            fleet
                .deploy(
                    candidate,
                    DeployOptions {
                        shadow: Some(ShadowConfig {
                            fraction: 1.0,
                            required_samples,
                            max_delta: 0.0,
                        }),
                    },
                )
                .map_err(submit_err)?;
            for i in 0..*requests {
                let (rgb, depth) = frame(&mut state.rng, net_config);
                let completion = fleet
                    .submit(Request::new(rgb, depth).with_source(healthy_source(i)))
                    .map_err(submit_err)?;
                expect_served(scene, completion.wait())?;
            }
            let after = fleet.stats();
            if after.shadow_max_delta != 0.0 {
                return Err(FleetChaosError::DeployRegression {
                    detail: format!(
                        "bit-identical shadow candidate diffed {:e}",
                        after.shadow_max_delta
                    ),
                });
            }
            if after.promotions != before.promotions + 1 {
                return Err(FleetChaosError::DeployRegression {
                    detail: format!(
                        "clean shadow deploy did not promote \
                         ({} promotions before, {} after, {} aborts)",
                        before.promotions, after.promotions, after.deploy_aborts
                    ),
                });
            }
            state.deploy_failed_legs += after.failed - before.failed;
        }
    }
    Ok(())
}

/// Runs the fleet schedule against a fresh tiny fusion net and checks
/// every invariant. See the module docs for the invariant list.
///
/// # Errors
///
/// Returns the first [`FleetChaosError`] encountered — an invalid
/// config, an inexplicable request outcome, a broken conservation or
/// cross-check identity, or a deploy regression.
pub fn run_fleet(config: &FleetChaosConfig) -> Result<FleetChaosReport, FleetChaosError> {
    config.validate()?;
    let net_config = NetworkConfig::tiny();
    let net = FusionNet::new(FusionScheme::AllFilterU, &net_config).map_err(|e| {
        FleetChaosError::Config {
            reason: format!("cannot build fleet chaos net: {e}"),
        }
    })?;
    let plan = Arc::new(HoldPlan::default());
    let mut builder = ServeConfig::builder()
        .max_batch(config.max_batch)
        .queue_capacity(config.queue_capacity)
        .backpressure(Backpressure::Reject)
        .max_wait(Duration::ZERO)
        .policy(DegradationPolicy::CameraFallback)
        .batch_probe(plan.probe());
    if let Some(deadline) = config.default_deadline {
        builder = builder.default_deadline(deadline);
    }
    if let Some(breaker) = config.breaker {
        builder = builder.breaker(breaker);
    }
    let serve = builder.build().map_err(|e| FleetChaosError::Config {
        reason: format!("replica server rejected chaos config: {e}"),
    })?;
    let fleet_config = FleetConfig {
        replicas: config.replicas,
        dispatch: config.dispatch,
        seed: config.seed,
        serve,
        max_redirects: config.replicas.max(2),
        // Revival is explicit (Revive scenes) so the routing stream stays
        // untouched by probe draws.
        revive_probe_chance: 0.0,
        ..FleetConfig::default()
    };
    let fleet = Fleet::start(net, fleet_config).map_err(|e| FleetChaosError::Config {
        reason: format!("fleet rejected chaos config: {e}"),
    })?;

    let mut state = RunState {
        rng: TensorRng::seed_from(config.seed),
        kills: 0,
        revives: 0,
        live_seed: net_config.seed,
        deploy_failed_legs: 0,
    };
    let mut run_scenes = || -> Result<(), FleetChaosError> {
        for (index, scene) in config.scenes.iter().enumerate() {
            run_fleet_scene(&fleet, scene, index, &net_config, &plan, config, &mut state)?;
        }
        Ok(())
    };
    let scene_result = run_scenes();
    // Always unpark held executors before shutdown, even on an invariant
    // failure mid-schedule, so the error propagates instead of hanging.
    plan.release_all();
    let (_net, stats) = fleet.shutdown();
    scene_result?;

    if !stats.is_conserved() {
        return Err(FleetChaosError::NotConserved {
            detail: format!(
                "{} submitted vs {} completed + {} rejected + {} expired + {} failed \
                 + {} redirected",
                stats.submitted,
                stats.completed,
                stats.rejected,
                stats.expired,
                stats.failed,
                stats.redirected
            ),
        });
    }
    stats
        .cross_check()
        .map_err(|detail| FleetChaosError::CrossCheck { detail })?;
    if state.deploy_failed_legs > 0 {
        return Err(FleetChaosError::DeployRegression {
            detail: format!(
                "{} legs terminally failed during hot-deploy scenes",
                state.deploy_failed_legs
            ),
        });
    }
    Ok(FleetChaosReport {
        stats,
        kills: state.kills,
        revives: state.revives,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_scene_parsing_round_trips_and_rejects_garbage() {
        let scenes =
            parse_fleet_scenes("calm:2, storm:3 ,deploystorm:1,revive:2,shadow:4,corrupt:1")
                .expect("parses");
        assert_eq!(scenes.len(), 6);
        assert_eq!(scenes[0], FleetScene::Calm { requests: 2 });
        assert_eq!(
            scenes[1],
            FleetScene::KillStorm {
                kill: 1,
                flood: 3,
                deploy: false
            }
        );
        assert_eq!(
            scenes[2],
            FleetScene::KillStorm {
                kill: 1,
                flood: 1,
                deploy: true
            }
        );
        assert_eq!(scenes[4].to_string(), "shadow:4");
        assert!(parse_fleet_scenes("calm").is_err());
        assert!(parse_fleet_scenes("calm:0").is_err());
        assert!(parse_fleet_scenes("riot:3").is_err());
    }

    #[test]
    fn fleet_config_validation_catches_lethal_schedules() {
        assert!(FleetChaosConfig::default().validate().is_ok());
        assert!(FleetChaosConfig::default().smoke().validate().is_ok());
        // Killing the last replica is a schedule bug, not a fleet bug.
        let lethal = FleetChaosConfig::default()
            .with_replicas(1)
            .with_scenes(parse_fleet_scenes("storm:2").unwrap());
        assert!(lethal.validate().is_err());
        // Two storms without a revive in between drain the fleet.
        let double = FleetChaosConfig::default()
            .with_replicas(2)
            .with_scenes(parse_fleet_scenes("storm:2,storm:2").unwrap());
        assert!(double.validate().is_err());
        // A revive between them makes it legal again.
        let revived = FleetChaosConfig::default()
            .with_replicas(2)
            .with_scenes(parse_fleet_scenes("storm:2,revive:1,storm:2").unwrap());
        assert!(revived.validate().is_ok());
        // A flood past the queue capacity could shed nondeterministically.
        let flood = FleetChaosConfig {
            queue_capacity: 2,
            ..FleetChaosConfig::default()
        }
        .with_scenes(parse_fleet_scenes("storm:3").unwrap());
        assert!(flood.validate().is_err());
    }

    #[test]
    fn fleet_chaos_error_display_and_source() {
        let err = FleetChaosError::UnexpectedOutcome {
            scene: "storm(kill 1):3".to_string(),
            error: ServeError::ShuttingDown,
        };
        assert!(err.to_string().contains("storm(kill 1):3"));
        assert!(std::error::Error::source(&err).is_some());
        let regression = FleetChaosError::DeployRegression {
            detail: "2 legs failed".to_string(),
        };
        assert!(regression.to_string().contains("deploy regression"));
    }
}
