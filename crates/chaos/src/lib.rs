//! Deterministic chaos harness for the serving stack.
//!
//! Chaos testing usually trades reproducibility for realism: random fault
//! injection finds bugs but cannot replay them. This harness keeps both.
//! A [`ChaosConfig`] is a *seeded fault schedule* — an ordered list of
//! [`Scene`]s (healthy traffic, corrupted depth sensors, injected batch
//! panics, batch slowdowns, stale zero-deadline requests, queue-full
//! storms) driven closed-loop against a real [`Server`], so the order in
//! which the server observes events is a pure function of the config.
//! Two runs with the same config produce bit-identical
//! [`ChaosReport::fingerprint`]s: the same terminal-state tally and the
//! same circuit-breaker transition log.
//!
//! Every run asserts the serving stack's conservation invariants and
//! fails with a typed [`ChaosError`] when one breaks:
//!
//! 1. **No lost requests** — every submission reaches exactly one
//!    terminal state (served / rejected / expired / failed); a request
//!    that vanishes (e.g. `ServerDropped`) is an error.
//! 2. **Honest accounting** — the server's [`StatsSnapshot`] tally equals
//!    the tally the harness counted from the outside, and
//!    `submitted == completed + rejected + expired + failed`.
//! 3. **Pool survives** — injected batch panics never poison the
//!    `sf-runtime` worker pool; it still serves work after shutdown.
//! 4. **Shutdown drains** — `Server::shutdown` always joins (a hang here
//!    fails the surrounding test by timeout).
//!
//! The [`fleet`]-level harness ([`FleetChaosConfig`] / [`run_fleet`])
//! extends the same discipline to a replica [`Fleet`](sf_serve::Fleet):
//! kill storms, revivals, mid-storm hot deploys and shadow deploys, with
//! fleet-wide leg conservation and the router-vs-replica cross-check
//! asserted after every run.
//!
//! # Examples
//!
//! ```
//! use sf_chaos::{ChaosConfig, Scene};
//!
//! let config = ChaosConfig::default()
//!     .with_seed(7)
//!     .with_scenes(vec![Scene::Calm { requests: 3 }, Scene::Stale { requests: 2 }]);
//! let report = sf_chaos::run(&config).unwrap();
//! assert_eq!(report.tally.completed, 3);
//! assert_eq!(report.tally.expired, 2);
//! ```

mod fleet;
mod soak;

pub use fleet::{
    parse_fleet_scenes, run_fleet, FleetChaosConfig, FleetChaosError, FleetChaosReport, FleetScene,
};
pub use soak::{
    run_soak, FaultBurst, SoakConfig, SoakError, SoakReport, WeatherFront, WindowSummary,
};

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use sf_core::{
    BreakerConfig, BreakerState, BreakerTransition, DegradationPolicy, FusionNet, FusionScheme,
    NetworkConfig,
};
use sf_dataset::{FaultInjector, SensorFault};
use sf_runtime::PoolStats;
use sf_serve::{Backpressure, BatchProbe, Request, ServeConfig, ServeError, Server};
use sf_tensor::{Tensor, TensorRng};

/// One phase of a chaos schedule. Scenes run in order, closed-loop (one
/// outstanding request at a time, except [`Scene::QueueStorm`] which
/// floods a plugged executor), so the server observes a deterministic
/// event sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scene {
    /// Healthy traffic: submit-and-wait `requests` well-formed frames.
    Calm {
        /// Closed-loop requests to serve.
        requests: usize,
    },
    /// Depth-sensor failure: each frame's depth is corrupted by `fault`
    /// before submission. With a quarantining policy this drives the
    /// circuit breaker's failure observations.
    Corrupt {
        /// Closed-loop requests to serve.
        requests: usize,
        /// Corruption applied to every depth frame (seeded per scene).
        fault: SensorFault,
    },
    /// Already-dead work: requests submitted with a zero deadline, which
    /// have always expired by dequeue time and must never execute.
    Stale {
        /// Requests to submit and expire.
        requests: usize,
    },
    /// Worker panics: the executor's batch probe panics inside the panic
    /// guard for each of these requests; they must fail typed
    /// (`BatchPanicked`) and the server must keep serving.
    PanicStorm {
        /// Requests whose batches panic.
        requests: usize,
    },
    /// Batch slowdowns: every batch sleeps `sleep_ms` before the forward
    /// pass. With a generous deadline these still complete; with a tight
    /// one they expire — either way they must terminate.
    Slowdown {
        /// Closed-loop requests to serve slowly.
        requests: usize,
        /// Injected per-batch delay, milliseconds.
        sleep_ms: u64,
    },
    /// Queue-full storm: plug the executor, flood the bounded queue to
    /// capacity plus `excess` from one thread, then unplug. Exactly
    /// `excess` submissions are shed with `QueueFull`.
    QueueStorm {
        /// Submissions beyond queue capacity (each must be rejected).
        excess: usize,
    },
}

impl Scene {
    fn request_count(&self) -> usize {
        match self {
            Scene::Calm { requests }
            | Scene::Corrupt { requests, .. }
            | Scene::Stale { requests }
            | Scene::PanicStorm { requests }
            | Scene::Slowdown { requests, .. } => *requests,
            Scene::QueueStorm { excess } => *excess,
        }
    }
}

impl fmt::Display for Scene {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scene::Calm { requests } => write!(f, "calm:{requests}"),
            Scene::Corrupt { requests, .. } => write!(f, "corrupt:{requests}"),
            Scene::Stale { requests } => write!(f, "stale:{requests}"),
            Scene::PanicStorm { requests } => write!(f, "panic:{requests}"),
            Scene::Slowdown { requests, .. } => write!(f, "slow:{requests}"),
            Scene::QueueStorm { excess } => write!(f, "storm:{excess}"),
        }
    }
}

/// Parses a comma-separated scene list, e.g. `calm:6,corrupt:10,storm:4`.
/// Kinds: `calm`, `corrupt` (dead depth sensor), `stale`, `panic`, `slow`
/// (5 ms per batch), `storm`.
///
/// # Errors
///
/// Returns a human-readable message naming the offending element.
pub fn parse_scenes(spec: &str) -> Result<Vec<Scene>, String> {
    spec.split(',')
        .map(|part| {
            let part = part.trim();
            let (kind, count) = part
                .split_once(':')
                .ok_or_else(|| format!("scene '{part}' is not of the form kind:count"))?;
            let n: usize = count
                .parse()
                .map_err(|_| format!("scene '{part}': '{count}' is not a count"))?;
            if n == 0 {
                return Err(format!("scene '{part}': count must be >= 1"));
            }
            match kind {
                "calm" => Ok(Scene::Calm { requests: n }),
                "corrupt" => Ok(Scene::Corrupt {
                    requests: n,
                    fault: SensorFault::DepthDropout { p: 1.0 },
                }),
                "stale" => Ok(Scene::Stale { requests: n }),
                "panic" => Ok(Scene::PanicStorm { requests: n }),
                "slow" => Ok(Scene::Slowdown {
                    requests: n,
                    sleep_ms: 5,
                }),
                "storm" => Ok(Scene::QueueStorm { excess: n }),
                other => Err(format!(
                    "unknown scene kind '{other}' (expected calm|corrupt|stale|panic|slow|storm)"
                )),
            }
        })
        .collect()
}

/// A seeded fault schedule plus the server shape it runs against.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Master seed: frames, per-scene fault injectors and the breaker's
    /// probe stream all derive from it.
    pub seed: u64,
    /// Ordered fault schedule.
    pub scenes: Vec<Scene>,
    /// Default deadline given to every request ([`Scene::Stale`] overrides
    /// with zero). Generous by default so live requests never expire
    /// nondeterministically; the chaos *sweep* tightens it on purpose.
    pub default_deadline: Option<Duration>,
    /// Circuit breaker for the served depth branch; `None` disables.
    pub breaker: Option<BreakerConfig>,
    /// Served batch-size bound.
    pub max_batch: usize,
    /// Bounded queue capacity ([`Scene::QueueStorm`] floods past it).
    pub queue_capacity: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A05,
            scenes: parse_scenes("calm:6,corrupt:10,slow:4,panic:3,stale:4,storm:4,calm:6")
                .expect("default scene spec parses"),
            default_deadline: Some(Duration::from_secs(10)),
            breaker: Some(BreakerConfig::default()),
            max_batch: 4,
            queue_capacity: 4,
        }
    }
}

impl ChaosConfig {
    /// Returns the config with a different seed (chainable).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a different schedule (chainable).
    pub fn with_scenes(mut self, scenes: Vec<Scene>) -> Self {
        self.scenes = scenes;
        self
    }

    /// Returns the config with a different default deadline (chainable).
    pub fn with_default_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.default_deadline = deadline;
        self
    }

    /// Returns the config with a different breaker (chainable; `None`
    /// disables the breaker).
    pub fn with_breaker(mut self, breaker: Option<BreakerConfig>) -> Self {
        self.breaker = breaker;
        self
    }

    /// A smoke-sized schedule that still touches every fault kind; used
    /// by `roadseg chaos --smoke` and CI.
    pub fn smoke(mut self) -> Self {
        self.scenes =
            parse_scenes("calm:2,corrupt:2,slow:2,panic:2,stale:2,storm:2").expect("parses");
        self
    }

    /// Total requests the schedule will submit (including shed ones).
    pub fn total_requests(&self) -> usize {
        // A storm also submits its holder request plus a queue-capacity
        // fill on top of the shed excess.
        self.scenes
            .iter()
            .map(|s| match s {
                Scene::QueueStorm { excess } => 1 + self.queue_capacity + excess,
                other => other.request_count(),
            })
            .sum()
    }

    /// Checks the invariants the harness relies on.
    ///
    /// # Errors
    ///
    /// Returns [`ChaosError::Config`] for an empty schedule, a zero
    /// `max_batch`/`queue_capacity`, a zero default deadline, or an
    /// invalid breaker config.
    pub fn validate(&self) -> Result<(), ChaosError> {
        if self.scenes.is_empty() {
            return Err(ChaosError::Config {
                reason: "chaos schedule has no scenes".to_string(),
            });
        }
        if self.scenes.iter().any(|s| s.request_count() == 0) {
            return Err(ChaosError::Config {
                reason: "every scene needs a request count >= 1".to_string(),
            });
        }
        if self.max_batch == 0 || self.queue_capacity == 0 {
            return Err(ChaosError::Config {
                reason: "max_batch and queue_capacity must be >= 1".to_string(),
            });
        }
        if self.default_deadline == Some(Duration::ZERO) {
            return Err(ChaosError::Config {
                reason: "a zero default deadline expires everything; use a Stale scene instead"
                    .to_string(),
            });
        }
        if let Some(breaker) = &self.breaker {
            if let Err(reason) = breaker.validate() {
                return Err(ChaosError::Config { reason });
            }
        }
        Ok(())
    }
}

/// Terminal-state counts as observed *from the outside* by the harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Requests that entered `submit` (admitted or shed).
    pub submitted: u64,
    /// Requests whose `wait()` returned a prediction.
    pub completed: u64,
    /// Submissions shed with `QueueFull`.
    pub rejected: u64,
    /// Requests that terminated with `DeadlineExceeded`.
    pub expired: u64,
    /// Requests that terminated with `BatchPanicked`/`BadRequest`.
    pub failed: u64,
}

impl Tally {
    /// The conservation law: every submission reached a terminal state.
    pub fn is_conserved(&self) -> bool {
        self.submitted == self.completed + self.rejected + self.expired + self.failed
    }
}

impl fmt::Display for Tally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "submitted {} = completed {} + rejected {} + expired {} + failed {}",
            self.submitted, self.completed, self.rejected, self.expired, self.failed
        )
    }
}

/// Outcome of a chaos run that satisfied every invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Terminal-state tally (harness-side; proven equal to the server's).
    pub tally: Tally,
    /// Served requests whose depth slot was quarantined (per-input policy
    /// or open breaker).
    pub quarantined: u64,
    /// Forward-pass batches the server executed.
    pub batches: u64,
    /// Times the breaker tripped open.
    pub breaker_trips: u64,
    /// Breaker state at shutdown, if one was configured.
    pub breaker_final: Option<BreakerState>,
    /// Full breaker transition log, oldest first.
    pub transitions: Vec<BreakerTransition>,
    /// `sf-runtime` pool counter delta across the run (proves the pool
    /// kept serving and which batches re-raised panics).
    pub pool_delta: PoolStats,
}

impl ChaosReport {
    /// A canonical string over everything that must be bit-reproducible
    /// across runs of the same config: the tally and the breaker
    /// transition log. Deliberately excludes wall-clock-dependent values
    /// (latency, throughput, pool task counts).
    pub fn fingerprint(&self) -> String {
        let mut out = format!("tally[{}] quarantined={}", self.tally, self.quarantined);
        for t in &self.transitions {
            out.push_str(&format!(
                " | {}->{}@{}:{}",
                t.from, t.to, t.at_request, t.reason
            ));
        }
        out
    }

    /// Multi-line human rendering for the CLI and the experiment sweep.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("  {}\n", self.tally));
        out.push_str(&format!(
            "  quarantined {}  batches {}  pool(+{} batches, +{} panicked)\n",
            self.quarantined,
            self.batches,
            self.pool_delta.batches,
            self.pool_delta.panicked_batches
        ));
        match self.breaker_final {
            Some(state) => {
                out.push_str(&format!(
                    "  breaker: {} (trips {}, {} transitions)\n",
                    state,
                    self.breaker_trips,
                    self.transitions.len()
                ));
                for t in &self.transitions {
                    out.push_str(&format!("    {t}\n"));
                }
            }
            None => out.push_str("  breaker: disabled\n"),
        }
        out
    }
}

/// A broken invariant (or an unrunnable config). Any of these from a
/// chaos run is a bug in the serving stack, not in the schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosError {
    /// The schedule itself is invalid.
    Config {
        /// Human-readable reason.
        reason: String,
    },
    /// A submission failed in a way the schedule cannot explain (e.g.
    /// `ShuttingDown` while the server should be live).
    UnexpectedOutcome {
        /// Which scene observed it.
        scene: String,
        /// The offending error.
        error: ServeError,
    },
    /// A request vanished without a terminal state (`ServerDropped`).
    LostRequest {
        /// Which scene observed it.
        scene: String,
    },
    /// The server's own counters disagree with the harness's outside
    /// count — something was lost or double-counted internally.
    TallyMismatch {
        /// What the harness observed.
        local: Tally,
        /// What the server reported.
        server: Tally,
    },
    /// The server's counters do not satisfy the conservation law.
    NotConserved {
        /// The non-conserving server tally.
        server: Tally,
    },
    /// The worker pool stopped serving work after the run.
    PoolStalled,
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::Config { reason } => write!(f, "invalid chaos config: {reason}"),
            ChaosError::UnexpectedOutcome { scene, error } => {
                write!(f, "scene {scene}: unexpected outcome: {error}")
            }
            ChaosError::LostRequest { scene } => {
                write!(f, "scene {scene}: a request reached no terminal state")
            }
            ChaosError::TallyMismatch { local, server } => {
                write!(
                    f,
                    "server tally disagrees with harness: harness [{local}] vs server [{server}]"
                )
            }
            ChaosError::NotConserved { server } => {
                write!(f, "server counters not conserved: [{server}]")
            }
            ChaosError::PoolStalled => {
                write!(f, "sf-runtime pool no longer serves work after the run")
            }
        }
    }
}

impl std::error::Error for ChaosError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChaosError::UnexpectedOutcome { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Per-batch action the chaos probe replays inside the executor. Scenes
/// enqueue actions just before submitting the request whose batch should
/// suffer them; closed-loop pacing makes the pairing exact.
enum ProbeAction {
    Sleep(Duration),
    Panic,
    /// Park the executor until [`ProbePlan::release`].
    Hold,
}

#[derive(Default)]
struct ProbePlan {
    actions: Mutex<VecDeque<ProbeAction>>,
    held: Mutex<bool>,
    release: Condvar,
}

impl ProbePlan {
    fn push(&self, action: ProbeAction) {
        self.actions
            .lock()
            .expect("plan poisoned")
            .push_back(action);
    }

    fn engage_hold(&self) {
        *self.held.lock().expect("plan poisoned") = true;
        self.push(ProbeAction::Hold);
    }

    fn release(&self) {
        *self.held.lock().expect("plan poisoned") = false;
        self.release.notify_all();
    }

    fn probe(self: &Arc<Self>) -> BatchProbe {
        let plan = Arc::clone(self);
        BatchProbe::new(move |_batch| {
            let action = plan.actions.lock().expect("plan poisoned").pop_front();
            match action {
                Some(ProbeAction::Sleep(d)) => std::thread::sleep(d),
                Some(ProbeAction::Panic) => panic!("chaos: injected batch panic"),
                Some(ProbeAction::Hold) => {
                    let mut held = plan.held.lock().expect("plan poisoned");
                    while *held {
                        held = plan.release.wait(held).expect("plan poisoned");
                    }
                }
                None => {}
            }
        })
    }
}

/// Runs the schedule against a fresh tiny fusion net and checks every
/// invariant. See the crate docs for the invariant list.
///
/// # Errors
///
/// Returns the first [`ChaosError`] encountered — an invalid config, an
/// inexplicable request outcome, or a broken conservation/pool invariant.
pub fn run(config: &ChaosConfig) -> Result<ChaosReport, ChaosError> {
    config.validate()?;
    let net_config = NetworkConfig::tiny();
    let net =
        FusionNet::new(FusionScheme::AllFilterU, &net_config).map_err(|e| ChaosError::Config {
            reason: format!("cannot build chaos net: {e}"),
        })?;
    let plan = Arc::new(ProbePlan::default());
    let mut builder = ServeConfig::builder()
        .max_batch(config.max_batch)
        .queue_capacity(config.queue_capacity)
        .backpressure(Backpressure::Reject)
        .max_wait(Duration::ZERO)
        .policy(DegradationPolicy::CameraFallback)
        .batch_probe(plan.probe());
    if let Some(deadline) = config.default_deadline {
        builder = builder.default_deadline(deadline);
    }
    if let Some(breaker) = config.breaker {
        builder = builder.breaker(breaker);
    }
    let serve_config = builder.build().map_err(|e| ChaosError::Config {
        reason: format!("server rejected chaos config: {e}"),
    })?;
    let server = Server::start(net, serve_config).map_err(|e| ChaosError::Config {
        reason: format!("server rejected chaos config: {e}"),
    })?;

    let pool_before = sf_runtime::pool_stats();
    let mut rng = TensorRng::seed_from(config.seed);
    let mut tally = Tally::default();
    let mut run_scenes = || -> Result<(), ChaosError> {
        for (index, scene) in config.scenes.iter().enumerate() {
            let scene_seed = config.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let ctx = SceneContext {
                net_config: &net_config,
                plan: &plan,
                scene_seed,
                queue_capacity: config.queue_capacity,
            };
            run_scene(&server, scene, &ctx, &mut rng, &mut tally)?;
        }
        Ok(())
    };
    let scene_result = run_scenes();
    // Always release a possibly-held executor before shutdown, even on an
    // invariant failure mid-schedule, so the error propagates instead of
    // hanging the drain.
    plan.release();
    let (_net, stats) = server.shutdown();
    scene_result?;

    let server_tally = Tally {
        submitted: stats.submitted,
        completed: stats.completed,
        rejected: stats.rejected,
        expired: stats.expired,
        failed: stats.failed,
    };
    if server_tally != tally {
        return Err(ChaosError::TallyMismatch {
            local: tally,
            server: server_tally,
        });
    }
    if !stats.is_conserved() {
        return Err(ChaosError::NotConserved {
            server: server_tally,
        });
    }
    // The pool must still serve work after every injected panic.
    sf_runtime::parallel_for(4, |_| {});
    let pool_delta = sf_runtime::pool_stats() - pool_before;
    if pool_delta.batches == 0 {
        return Err(ChaosError::PoolStalled);
    }
    Ok(ChaosReport {
        tally,
        quarantined: stats.quarantined,
        batches: stats.batches,
        breaker_trips: stats.breaker_trips,
        breaker_final: stats.breaker_state,
        transitions: stats.breaker_transitions,
        pool_delta,
    })
}

fn frame(rng: &mut TensorRng, net_config: &NetworkConfig) -> (Tensor, Tensor) {
    let (h, w) = (net_config.height, net_config.width);
    (
        rng.uniform(&[3, h, w], 0.0, 1.0),
        rng.uniform(&[net_config.depth_channels, h, w], 0.1, 1.0),
    )
}

/// Classifies one request's terminal outcome into the tally.
fn settle(
    scene: &Scene,
    tally: &mut Tally,
    outcome: Result<sf_serve::Prediction, ServeError>,
) -> Result<(), ChaosError> {
    match outcome {
        Ok(_) => tally.completed += 1,
        Err(ServeError::DeadlineExceeded { .. }) => tally.expired += 1,
        Err(ServeError::BatchPanicked { .. } | ServeError::BadRequest { .. }) => tally.failed += 1,
        Err(ServeError::ServerDropped) => {
            return Err(ChaosError::LostRequest {
                scene: scene.to_string(),
            })
        }
        Err(error) => {
            return Err(ChaosError::UnexpectedOutcome {
                scene: scene.to_string(),
                error,
            })
        }
    }
    Ok(())
}

/// Everything a scene needs beyond the server, frames RNG and tally.
struct SceneContext<'a> {
    net_config: &'a NetworkConfig,
    plan: &'a Arc<ProbePlan>,
    scene_seed: u64,
    queue_capacity: usize,
}

fn run_scene(
    server: &Server,
    scene: &Scene,
    ctx: &SceneContext<'_>,
    rng: &mut TensorRng,
    tally: &mut Tally,
) -> Result<(), ChaosError> {
    let SceneContext {
        net_config,
        plan,
        scene_seed,
        queue_capacity,
    } = *ctx;
    let submit_err = |error: ServeError| ChaosError::UnexpectedOutcome {
        scene: scene.to_string(),
        error,
    };
    match scene {
        Scene::Calm { requests } => {
            for _ in 0..*requests {
                let (rgb, depth) = frame(rng, net_config);
                let completion = server
                    .submit(Request::new(rgb, depth))
                    .map_err(submit_err)?;
                tally.submitted += 1;
                settle(scene, tally, completion.wait())?;
            }
        }
        Scene::Corrupt { requests, fault } => {
            let mut injector = FaultInjector::new(*fault, scene_seed);
            for _ in 0..*requests {
                let (rgb, depth) = frame(rng, net_config);
                let depth = injector.corrupt_depth(&depth);
                let completion = server
                    .submit(Request::new(rgb, depth))
                    .map_err(submit_err)?;
                tally.submitted += 1;
                settle(scene, tally, completion.wait())?;
            }
        }
        Scene::Stale { requests } => {
            for _ in 0..*requests {
                let (rgb, depth) = frame(rng, net_config);
                let completion = server
                    .submit(Request::new(rgb, depth).with_deadline(Duration::ZERO))
                    .map_err(submit_err)?;
                tally.submitted += 1;
                settle(scene, tally, completion.wait())?;
            }
        }
        Scene::PanicStorm { requests } => {
            for _ in 0..*requests {
                let (rgb, depth) = frame(rng, net_config);
                plan.push(ProbeAction::Panic);
                let completion = server
                    .submit(Request::new(rgb, depth))
                    .map_err(submit_err)?;
                tally.submitted += 1;
                settle(scene, tally, completion.wait())?;
            }
        }
        Scene::Slowdown { requests, sleep_ms } => {
            for _ in 0..*requests {
                let (rgb, depth) = frame(rng, net_config);
                plan.push(ProbeAction::Sleep(Duration::from_millis(*sleep_ms)));
                let completion = server
                    .submit(Request::new(rgb, depth))
                    .map_err(submit_err)?;
                tally.submitted += 1;
                settle(scene, tally, completion.wait())?;
            }
        }
        Scene::QueueStorm { excess } => {
            // Plug the executor with a holder request, wait for it to be
            // claimed (queue empty again), then flood from this one thread:
            // capacity admits, the next `excess` submissions are shed —
            // exact counts, no races.
            let batches_before = server.stats().batches;
            plan.engage_hold();
            let (rgb, depth) = frame(rng, net_config);
            let holder = server
                .submit(Request::new(rgb, depth))
                .map_err(submit_err)?;
            tally.submitted += 1;
            while server.stats().batches == batches_before {
                std::thread::sleep(Duration::from_millis(1));
            }
            let mut admitted = Vec::new();
            let flood = queue_capacity + excess;
            for _ in 0..flood {
                let (rgb, depth) = frame(rng, net_config);
                match server.submit(Request::new(rgb, depth)) {
                    Ok(completion) => {
                        tally.submitted += 1;
                        admitted.push(completion);
                    }
                    Err(ServeError::QueueFull { .. }) => {
                        tally.submitted += 1;
                        tally.rejected += 1;
                    }
                    Err(error) => return Err(submit_err(error)),
                }
            }
            plan.release();
            settle(scene, tally, holder.wait())?;
            for completion in admitted {
                settle(scene, tally, completion.wait())?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_parsing_round_trips_and_rejects_garbage() {
        let scenes = parse_scenes("calm:2, corrupt:3 ,storm:1").expect("parses");
        assert_eq!(scenes.len(), 3);
        assert_eq!(scenes[0], Scene::Calm { requests: 2 });
        assert_eq!(
            scenes[1],
            Scene::Corrupt {
                requests: 3,
                fault: SensorFault::DepthDropout { p: 1.0 }
            }
        );
        assert_eq!(scenes[2].to_string(), "storm:1");
        assert!(parse_scenes("calm").is_err());
        assert!(parse_scenes("calm:0").is_err());
        assert!(parse_scenes("calm:x").is_err());
        assert!(parse_scenes("riot:3").is_err());
    }

    #[test]
    fn config_validation() {
        assert!(ChaosConfig::default().validate().is_ok());
        assert!(ChaosConfig::default()
            .with_scenes(vec![])
            .validate()
            .is_err());
        assert!(ChaosConfig::default()
            .with_default_deadline(Some(Duration::ZERO))
            .validate()
            .is_err());
        let bad = ChaosConfig {
            max_batch: 0,
            ..ChaosConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn chaos_error_display_and_source() {
        let err = ChaosError::UnexpectedOutcome {
            scene: "calm:1".to_string(),
            error: ServeError::ShuttingDown,
        };
        assert!(err.to_string().contains("calm:1"));
        assert!(std::error::Error::source(&err).is_some());
        let lost = ChaosError::LostRequest {
            scene: "storm:2".to_string(),
        };
        assert!(lost.to_string().contains("no terminal state"));
    }
}
