//! The chaos acceptance criteria: seeded runs are bit-reproducible,
//! nothing is ever lost under panics and slowdowns, stale work never
//! executes, storms shed exact counts, and the breaker completes a full
//! trip→recover cycle inside a run.

use std::time::Duration;

use sf_chaos::{parse_scenes, run, ChaosConfig, Scene};
use sf_core::{BreakerConfig, BreakerState};
use sf_dataset::SensorFault;

#[test]
fn default_schedule_is_bit_reproducible() {
    let config = ChaosConfig::default();
    let a = run(&config).expect("first run satisfies all invariants");
    let b = run(&config).expect("second run satisfies all invariants");
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "identical config must replay an identical terminal tally and breaker log"
    );
    // The default schedule actually exercises the breaker: the corrupt
    // scene must trip it at least once.
    assert!(
        a.breaker_trips >= 1,
        "default schedule must trip the breaker"
    );
    assert!(!a.transitions.is_empty());
    assert!(a.tally.is_conserved(), "{:?}", a.tally);
}

#[test]
fn smoke_schedule_is_reproducible_and_fast() {
    let config = ChaosConfig::default().smoke().with_seed(11);
    let a = run(&config).expect("smoke run passes");
    let b = run(&config).expect("smoke run passes again");
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert!(a.tally.is_conserved());
}

#[test]
fn every_scene_kind_accounts_exactly_with_generous_deadlines() {
    // With a generous deadline, every terminal count is exact:
    // calm+corrupt+slow complete, panic fails, stale expires, storm sheds
    // precisely its excess.
    let config = ChaosConfig::default()
        .with_seed(3)
        .with_scenes(parse_scenes("calm:3,corrupt:2,slow:2,panic:3,stale:4,storm:2").unwrap())
        .with_breaker(None);
    let report = run(&config).expect("run passes");
    // storm submits 1 holder + queue_capacity fill + excess.
    let storm_served = 1 + config.queue_capacity as u64;
    assert_eq!(report.tally.completed, 3 + 2 + 2 + storm_served);
    assert_eq!(report.tally.failed, 3, "each injected panic fails typed");
    assert_eq!(
        report.tally.expired, 4,
        "each zero-deadline request expires"
    );
    assert_eq!(report.tally.rejected, 2, "storm sheds exactly its excess");
    assert!(report.tally.is_conserved());
    assert_eq!(report.breaker_final, None, "breaker was disabled");
    // Pool survived the panics and kept serving.
    assert!(report.pool_delta.batches >= 1);
}

#[test]
fn stale_requests_never_occupy_forward_batches() {
    let config = ChaosConfig::default()
        .with_seed(5)
        .with_scenes(vec![
            Scene::Stale { requests: 6 },
            Scene::Calm { requests: 2 },
        ])
        .with_breaker(None);
    let report = run(&config).expect("run passes");
    assert_eq!(report.tally.expired, 6);
    assert_eq!(report.tally.completed, 2);
    // Only the two live requests may have consumed forward passes.
    assert!(
        report.batches <= 2,
        "expired requests must not execute: {} batches",
        report.batches
    );
}

#[test]
fn breaker_trips_and_recovers_within_one_schedule() {
    // Small breaker so the cycle closes inside the schedule: 4 corrupt
    // observations trip it; 2 open requests reach half-open; with
    // probe_chance 1.0 every half-open admission probes, and 2 healthy
    // probes close it again.
    let breaker = BreakerConfig {
        window: 4,
        min_samples: 4,
        trip_threshold: 0.5,
        cooldown: 2,
        success_probes: 2,
        probe_chance: 1.0,
        seed: 17,
    };
    let config = ChaosConfig::default()
        .with_seed(9)
        .with_scenes(vec![
            Scene::Corrupt {
                requests: 4,
                fault: SensorFault::DepthDropout { p: 1.0 },
            },
            Scene::Calm { requests: 8 },
        ])
        .with_breaker(Some(breaker));
    let a = run(&config).expect("run passes");
    let b = run(&config).expect("rerun passes");
    assert_eq!(a.fingerprint(), b.fingerprint(), "breaker log must replay");
    assert_eq!(a.breaker_trips, 1);
    assert_eq!(a.breaker_final, Some(BreakerState::Closed), "recovered");
    let states: Vec<(BreakerState, BreakerState)> =
        a.transitions.iter().map(|t| (t.from, t.to)).collect();
    assert_eq!(
        states,
        vec![
            (BreakerState::Closed, BreakerState::Open),
            (BreakerState::Open, BreakerState::HalfOpen),
            (BreakerState::HalfOpen, BreakerState::Closed),
        ]
    );
    // The 4 corrupt requests were quarantined per input; the 2 open-state
    // calm requests were forced camera-only by the breaker.
    assert_eq!(a.quarantined, 6);
    assert!(a.tally.is_conserved());
}

#[test]
fn tight_deadlines_under_slowdown_still_conserve() {
    // A 20ms deadline against 60ms batch slowdowns: requests expire at
    // dequeue or post-execution depending on timing — NOT reproducible,
    // and deliberately so. The invariants must hold anyway: every request
    // terminates and the counters conserve.
    let config = ChaosConfig::default()
        .with_seed(13)
        .with_scenes(vec![
            Scene::Slowdown {
                requests: 4,
                sleep_ms: 60,
            },
            Scene::Calm { requests: 2 },
        ])
        .with_default_deadline(Some(Duration::from_millis(20)))
        .with_breaker(None);
    let report = run(&config).expect("invariants hold under expiry races");
    assert!(report.tally.is_conserved(), "{:?}", report.tally);
    assert_eq!(
        report.tally.completed + report.tally.expired,
        6,
        "every request terminated as served or expired"
    );
}

#[test]
fn fingerprints_differ_across_fault_schedules() {
    // Not an invariant, a sanity check: the fingerprint actually encodes
    // the schedule rather than being a constant.
    let calm = ChaosConfig::default()
        .with_scenes(vec![Scene::Calm { requests: 4 }])
        .with_breaker(None);
    let panics = ChaosConfig::default()
        .with_scenes(vec![Scene::PanicStorm { requests: 4 }])
        .with_breaker(None);
    let a = run(&calm).expect("calm passes");
    let b = run(&panics).expect("panics pass");
    assert_ne!(a.fingerprint(), b.fingerprint());
}
