//! Fleet chaos acceptance criteria: a seeded schedule that kills
//! replicas mid-stream and hot-swaps the model completes with fleet-wide
//! conservation, the router-vs-replica cross-check holds, two same-seed
//! runs produce bit-identical fingerprints, and a shadow deploy of a
//! bit-identical candidate diffs exactly zero.

use sf_chaos::{parse_fleet_scenes, run_fleet, FleetChaosConfig};
use sf_serve::DispatchPolicy;

#[test]
fn default_fleet_schedule_is_bit_reproducible() {
    let config = FleetChaosConfig::default();
    let a = run_fleet(&config).expect("first run satisfies all invariants");
    let b = run_fleet(&config).expect("second run satisfies all invariants");
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "identical config must replay an identical fleet ledger"
    );
    assert!(a.stats.is_conserved());
    a.stats.cross_check().expect("cross-check holds");
    // The schedule actually exercised the failure paths it promises:
    // kills redirected work, revivals happened, deploys promoted, and the
    // shadow of an identical candidate diffed exactly zero.
    assert_eq!(a.kills, 2, "storm + deploystorm each kill one replica");
    assert_eq!(a.revives, 1);
    assert!(a.stats.redirected >= 1, "killed queues must redirect");
    assert_eq!(a.stats.failed, 0, "no leg may terminally fail");
    assert_eq!(a.stats.promotions, 2, "deploystorm + shadow both promote");
    assert_eq!(a.stats.deploy_aborts, 0);
    assert_eq!(a.stats.shadow_max_delta, 0.0);
    assert!(a.stats.shadow_samples >= 1);
    // The dying depth source tripped a slot breaker somewhere.
    let trips: u64 = a.stats.replicas.iter().map(|r| r.breaker_trips).sum();
    assert!(trips >= 1, "corrupt scene must trip a slot breaker");
}

#[test]
fn smoke_schedule_is_reproducible_and_fast() {
    let config = FleetChaosConfig::default().smoke().with_seed(31);
    let a = run_fleet(&config).expect("smoke run passes");
    let b = run_fleet(&config).expect("smoke run passes again");
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert!(a.stats.is_conserved());
    a.stats.cross_check().expect("cross-check holds");
    assert_eq!(a.stats.failed, 0);
    assert_eq!(a.stats.shadow_max_delta, 0.0);
}

#[test]
fn both_dispatch_policies_survive_the_same_storm() {
    for dispatch in [
        DispatchPolicy::ConsistentHash,
        DispatchPolicy::LeastOutstanding,
    ] {
        let config = FleetChaosConfig::default()
            .with_seed(17)
            .with_dispatch(dispatch)
            .with_scenes(parse_fleet_scenes("calm:3,storm:4,revive:2,calm:2").unwrap());
        let a = run_fleet(&config)
            .unwrap_or_else(|e| panic!("{} policy failed: {e}", dispatch.label()));
        let b = run_fleet(&config).expect("rerun passes");
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "{} policy must replay bit-identically",
            dispatch.label()
        );
        assert_eq!(a.kills, 1);
        assert!(a.stats.redirected >= 1);
        assert_eq!(a.stats.failed, 0);
    }
}

#[test]
fn fingerprints_differ_across_schedules() {
    // Sanity check that the fingerprint encodes the schedule rather than
    // being a constant.
    let calm = FleetChaosConfig::default().with_scenes(parse_fleet_scenes("calm:4").unwrap());
    let stormy =
        FleetChaosConfig::default().with_scenes(parse_fleet_scenes("calm:1,storm:3").unwrap());
    let a = run_fleet(&calm).expect("calm passes");
    let b = run_fleet(&stormy).expect("storm passes");
    assert_ne!(a.fingerprint(), b.fingerprint());
}
