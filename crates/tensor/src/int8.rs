//! Int8 quantization primitives and integer convolution kernels.
//!
//! Symmetric linear quantization: a real value `v` is stored as
//! `q = clamp(round(v / scale), -127, 127)` and recovered as `q · scale`.
//! The range is deliberately `[-127, 127]` (not `-128`) so negation never
//! overflows and the representable grid is symmetric around zero — the
//! standard choice for weight quantization.
//!
//! The kernels here are integer twins of the f32 `im2col` + `i-k-j`
//! matmul pair that powers every convolution in the stack: the compiled
//! plan's int8 lowering in `sf-core` quantizes the activation plane,
//! unfolds it with [`im2col_i8_into`], multiplies with
//! [`matmul_i8_into`] into `i32` accumulators and dequantizes once per
//! output channel. Because `i32` addition is exact (no rounding), the
//! accumulator value is independent of summation order — int8 results are
//! bit-reproducible by construction, parallel or not.

use crate::Conv2dSpec;

/// Minimum number of output elements before [`matmul_i8_into`] splits
/// rows across the worker pool; mirrors the f32 kernel's threshold.
const PARALLEL_THRESHOLD: usize = 64 * 1024;

/// i8 elements of `b` streamed per column block; same cache-resident
/// panel sizing rationale as the f32 kernel (i8 is 4x denser, so the
/// same element count is an even safer fit).
const MM_PANEL_ELEMS: usize = 1 << 16;

/// The symmetric scale mapping `[-max_abs, max_abs]` onto the int8 grid:
/// `max_abs / 127`, with an all-zero range degenerating to `1.0` so the
/// quantizer never divides by zero (every value is 0 either way).
pub fn symmetric_scale(max_abs: f32) -> f32 {
    if max_abs > 0.0 {
        max_abs / 127.0
    } else {
        1.0
    }
}

/// Largest absolute value in `src` (`0.0` for an empty slice).
pub fn max_abs(src: &[f32]) -> f32 {
    src.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
}

/// Quantizes `src` into `dst` with one shared `scale`:
/// `q = clamp(round(v / scale), -127, 127)`, round-half-away-from-zero
/// (`f32::round`). Non-finite inputs saturate.
///
/// # Panics
///
/// Panics if the slices differ in length or `scale` is not positive.
pub fn quantize_i8(src: &[f32], scale: f32, dst: &mut [i8]) {
    assert_eq!(src.len(), dst.len(), "quantize_i8 slice lengths differ");
    assert!(scale > 0.0, "quantize_i8 scale must be positive");
    let inv = 1.0 / scale;
    for (d, &v) in dst.iter_mut().zip(src) {
        *d = (v * inv).round().clamp(-127.0, 127.0) as i8;
    }
}

/// Dequantizes `src` into `dst`: `v = q · scale`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dequantize_i8(src: &[i8], scale: f32, dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "dequantize_i8 slice lengths differ");
    for (d, &q) in dst.iter_mut().zip(src) {
        *d = f32::from(q) * scale;
    }
}

/// Quantizes a row-major `[rows, cols]` matrix with one symmetric scale
/// per row — the per-output-channel weight quantization used for conv
/// weight matrices laid out `[out_c, patch]`. Returns `(q, scales)` with
/// `q.len() == src.len()` and `scales.len() == rows`.
///
/// # Panics
///
/// Panics if `src.len()` is not a multiple of `rows` (for `rows > 0`).
pub fn quantize_per_row(src: &[f32], rows: usize) -> (Vec<i8>, Vec<f32>) {
    if rows == 0 {
        assert!(src.is_empty(), "quantize_per_row: rows=0 with data");
        return (Vec::new(), Vec::new());
    }
    assert_eq!(src.len() % rows, 0, "quantize_per_row: ragged rows");
    let cols = src.len() / rows;
    let mut q = vec![0i8; src.len()];
    let mut scales = Vec::with_capacity(rows);
    for (qrow, row) in q.chunks_mut(cols).zip(src.chunks(cols)) {
        let scale = symmetric_scale(max_abs(row));
        quantize_i8(row, scale, qrow);
        scales.push(scale);
    }
    (q, scales)
}

/// The int8 twin of the f32 `im2col_into`: scatters one `CHW` image of
/// quantized activations into a pre-zeroed patch matrix whose rows have
/// length `row_stride`, writing this image's `OH·OW` columns at
/// `col_offset`. Padding taps are left untouched (zero-point is 0 under
/// symmetric quantization, so zeroed padding is exact).
#[allow(clippy::too_many_arguments)]
pub fn im2col_i8_into(
    src: &[i8],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
    dst: &mut [i8],
    row_stride: usize,
    col_offset: usize,
) {
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    let pad = spec.padding as isize;
    let stride = spec.stride;
    for ch in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ch * kh + ki) * kw + kj;
                let dst_row = &mut dst[row * row_stride + col_offset..][..oh * ow];
                for oy in 0..oh {
                    let iy = (oy * stride) as isize + ki as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_base = (ch * h + iy as usize) * w;
                    let dst_base = oy * ow;
                    if stride == 1 {
                        // Same contiguous-span fast path as the f32 kernel.
                        let shift = kj as isize - pad;
                        let ox0 = (-shift).max(0) as usize;
                        let ox1 = ow.min((w as isize - shift).max(0) as usize);
                        if ox0 < ox1 {
                            let ix0 = (ox0 as isize + shift) as usize;
                            dst_row[dst_base + ox0..dst_base + ox1]
                                .copy_from_slice(&src[src_base + ix0..src_base + ix0 + ox1 - ox0]);
                        }
                    } else {
                        for ox in 0..ow {
                            let ix = (ox * stride) as isize + kj as isize - pad;
                            if ix >= 0 && ix < w as isize {
                                dst_row[dst_base + ox] = src[src_base + ix as usize];
                            }
                        }
                    }
                }
            }
        }
    }
}

/// `out[m,n] += a[m,k] · b[k,n]` with `i8` operands widened into `i32`
/// accumulators. `out` must be zeroed (the kernel accumulates).
///
/// With `|a|, |b| ≤ 127` the per-element product is at most `16129`, so
/// the `i32` accumulator is exact up to `k ≈ 1.3e5` — far beyond any
/// patch length in this stack — and integer addition is associative, so
/// the result is bit-identical regardless of tiling or thread split.
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`k`/`n` extent implies.
pub fn matmul_i8_into(a: &[i8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
    assert!(
        a.len() >= m * k && b.len() >= k * n && out.len() >= m * n,
        "matmul_i8_into slice lengths too short for {m}x{k}x{n}"
    );
    let threads = sf_runtime::num_threads();
    if m * n < PARALLEL_THRESHOLD || threads <= 1 || m < 2 {
        mm_i8_rows(a, b, out, 0..m, k, n);
        return;
    }
    let chunk = m.div_ceil(threads);
    sf_runtime::parallel_chunks_mut(out, chunk * n, |ci, rows_out| {
        let row0 = ci * chunk;
        let rows = rows_out.len() / n;
        mm_i8_rows(a, b, rows_out, row0..row0 + rows, k, n);
    });
}

fn mm_i8_rows(
    a: &[i8],
    b: &[i8],
    out: &mut [i32],
    rows: std::ops::Range<usize>,
    k: usize,
    n: usize,
) {
    // Column-tiled i-k-j, the integer twin of the f32 kernel's loop.
    let block = (MM_PANEL_ELEMS / k.max(1)).max(256).min(n.max(1));
    let base = rows.start;
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + block).min(n);
        for i in rows.clone() {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[(i - base) * n + j0..(i - base) * n + j1];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0 {
                    continue;
                }
                let av = i32::from(av);
                let brow = &b[p * n + j0..p * n + j1];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * i32::from(bv);
                }
            }
        }
        j0 = j1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> f32 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        ((*state % 2000) as f32 - 1000.0) / 500.0
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_scale() {
        let mut state = 7u64;
        let src: Vec<f32> = (0..256).map(|_| xorshift(&mut state)).collect();
        let scale = symmetric_scale(max_abs(&src));
        let mut q = vec![0i8; src.len()];
        quantize_i8(&src, scale, &mut q);
        let mut back = vec![0.0f32; src.len()];
        dequantize_i8(&q, scale, &mut back);
        for (&v, &r) in src.iter().zip(&back) {
            assert!(
                (v - r).abs() <= scale / 2.0 + 1e-6,
                "{v} vs {r} (scale {scale})"
            );
        }
    }

    #[test]
    fn rounding_is_half_away_from_zero_and_saturating() {
        let mut q = [0i8; 5];
        quantize_i8(&[0.5, -0.5, 1.49, 400.0, -400.0], 1.0, &mut q);
        assert_eq!(q, [1, -1, 1, 127, -127]);
        assert_eq!(symmetric_scale(0.0), 1.0);
    }

    #[test]
    fn per_row_scales_are_independent() {
        let src = [1.0, -0.5, 0.0, 100.0, 50.0, -100.0];
        let (q, scales) = quantize_per_row(&src, 2);
        assert_eq!(scales.len(), 2);
        assert!((scales[0] - 1.0 / 127.0).abs() < 1e-9);
        assert!((scales[1] - 100.0 / 127.0).abs() < 1e-9);
        assert_eq!(q[0], 127);
        assert_eq!(q[3], 127);
        assert_eq!(q[5], -127);
    }

    #[test]
    fn i8_matmul_matches_naive_i32() {
        let (m, k, n) = (5, 7, 9);
        let mut state = 3u64;
        let a: Vec<i8> = (0..m * k)
            .map(|_| (xorshift(&mut state) * 60.0) as i8)
            .collect();
        let b: Vec<i8> = (0..k * n)
            .map(|_| (xorshift(&mut state) * 60.0) as i8)
            .collect();
        let mut fast = vec![0i32; m * n];
        matmul_i8_into(&a, &b, &mut fast, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let want: i32 = (0..k)
                    .map(|p| i32::from(a[i * k + p]) * i32::from(b[p * n + j]))
                    .sum();
                assert_eq!(fast[i * n + j], want, "({i},{j})");
            }
        }
    }

    #[test]
    fn large_i8_matmul_parallel_path_is_exact() {
        // m*n crosses the parallel threshold; i32 accumulation is exact,
        // so the parallel result must equal the naive one bit-for-bit.
        let (m, k, n) = (128, 33, 512);
        let mut state = 11u64;
        let a: Vec<i8> = (0..m * k)
            .map(|_| (xorshift(&mut state) * 80.0) as i8)
            .collect();
        let b: Vec<i8> = (0..k * n)
            .map(|_| (xorshift(&mut state) * 80.0) as i8)
            .collect();
        let mut fast = vec![0i32; m * n];
        matmul_i8_into(&a, &b, &mut fast, m, k, n);
        let mut slow = vec![0i32; m * n];
        mm_i8_rows(&a, &b, &mut slow, 0..m, k, n);
        assert_eq!(fast, slow);
    }

    #[test]
    fn per_row_round_trip_error_is_bounded_by_each_rows_scale() {
        use crate::testkit::check_cases;
        check_cases(64, |c| {
            let rows = c.usize_in(1, 8);
            let cols = c.usize_in(1, 33);
            let mag = c.f32_in(0.05, 50.0);
            let mut src = c.rng().uniform(&[rows, cols], -mag, mag).data().to_vec();
            if c.case % 3 == 0 {
                // An all-zero row degenerates to scale 1.0 and must
                // round-trip exactly, independent of its neighbours.
                src[..cols].fill(0.0);
            }
            let (q, scales) = quantize_per_row(&src, rows);
            assert_eq!(scales.len(), rows);
            for r in 0..rows {
                let row = &src[r * cols..(r + 1) * cols];
                let mut back = vec![0.0f32; cols];
                dequantize_i8(&q[r * cols..(r + 1) * cols], scales[r], &mut back);
                let bound = scales[r] / 2.0 + scales[r] * 1e-5;
                for (&v, &rec) in row.iter().zip(&back) {
                    assert!(
                        (v - rec).abs() <= bound,
                        "case {}: row {r}: {v} vs {rec} (scale {})",
                        c.case,
                        scales[r]
                    );
                }
            }
        });
    }

    #[test]
    fn dequantized_i8_matmul_tracks_f32_within_accumulated_scale_bound() {
        use crate::testkit::check_cases;
        check_cases(48, |c| {
            let m = c.usize_in(1, 7);
            let k = c.usize_in(1, 17);
            let n = c.usize_in(1, 9);
            let wmag = c.f32_in(0.1, 4.0);
            let xmag = c.f32_in(0.1, 8.0);
            let w = c.rng().uniform(&[m, k], -wmag, wmag).data().to_vec();
            let x = c.rng().uniform(&[k, n], -xmag, xmag).data().to_vec();
            // The compiled plan's scale placement: weights per output row,
            // activations per tensor, i32 accumulation, dequantize with
            // the product of both scales.
            let (qw, wscales) = quantize_per_row(&w, m);
            let xscale = symmetric_scale(max_abs(&x));
            let mut qx = vec![0i8; x.len()];
            quantize_i8(&x, xscale, &mut qx);
            let mut acc = vec![0i32; m * n];
            matmul_i8_into(&qw, &qx, &mut acc, m, k, n);
            let xmax = f64::from(max_abs(&x));
            let xs = f64::from(xscale);
            for i in 0..m {
                let ws = f64::from(wscales[i]);
                let wmax_row = f64::from(max_abs(&w[i * k..(i + 1) * k]));
                // Per-term error ≤ |w|·|dx| + |x̂|·|dw| with |dx| ≤ xs/2,
                // |dw| ≤ ws/2 and |x̂| ≤ xmax + xs/2, accumulated over k.
                let bound = k as f64 * (wmax_row * xs / 2.0 + (xmax + xs / 2.0) * ws / 2.0) + 1e-4;
                for j in 0..n {
                    let exact: f64 = (0..k)
                        .map(|p| f64::from(w[i * k + p]) * f64::from(x[p * n + j]))
                        .sum();
                    let deq = f64::from(acc[i * n + j]) * ws * xs;
                    assert!(
                        (deq - exact).abs() <= bound,
                        "case {}: ({i},{j}) dequantized {deq} vs exact {exact} (bound {bound})",
                        c.case
                    );
                }
            }
        });
    }

    #[test]
    fn i8_im2col_matches_f32_im2col_on_quantized_input() {
        use crate::{im2col_into, Conv2dSpec};
        let (c, h, w, kh, kw) = (2, 5, 6, 3, 3);
        let spec = Conv2dSpec::same(3);
        let mut state = 19u64;
        let img: Vec<f32> = (0..c * h * w).map(|_| xorshift(&mut state)).collect();
        let scale = symmetric_scale(max_abs(&img));
        let mut qimg = vec![0i8; img.len()];
        quantize_i8(&img, scale, &mut qimg);
        let cols = h * w;
        // f32 unfold of the already-quantized (integer-valued) image...
        let fimg: Vec<f32> = qimg.iter().map(|&q| f32::from(q)).collect();
        let mut fcols = vec![0.0f32; c * kh * kw * cols];
        im2col_into(&fimg, c, h, w, kh, kw, spec, &mut fcols, cols, 0);
        // ...must equal the i8 unfold, element for element.
        let mut qcols = vec![0i8; c * kh * kw * cols];
        im2col_i8_into(&qimg, c, h, w, kh, kw, spec, &mut qcols, cols, 0);
        for (&f, &q) in fcols.iter().zip(&qcols) {
            assert_eq!(f, f32::from(q));
        }
    }

    #[test]
    fn strided_i8_im2col_matches_f32() {
        use crate::im2col_into;
        let (c, h, w, kh, kw) = (1, 6, 6, 2, 2);
        let spec = Conv2dSpec {
            stride: 2,
            padding: 0,
        };
        let qimg: Vec<i8> = (0..c * h * w).map(|i| (i as i8).wrapping_sub(17)).collect();
        let fimg: Vec<f32> = qimg.iter().map(|&q| f32::from(q)).collect();
        let oh = spec.out_size(h, kh);
        let ow = spec.out_size(w, kw);
        let cols = oh * ow;
        let mut fcols = vec![0.0f32; c * kh * kw * cols];
        im2col_into(&fimg, c, h, w, kh, kw, spec, &mut fcols, cols, 0);
        let mut qcols = vec![0i8; c * kh * kw * cols];
        im2col_i8_into(&qimg, c, h, w, kh, kw, spec, &mut qcols, cols, 0);
        for (&f, &q) in fcols.iter().zip(&qcols) {
            assert_eq!(f, f32::from(q));
        }
    }
}
