use std::error::Error;
use std::fmt;

/// Errors produced by fallible tensor operations.
///
/// All variants carry enough context to diagnose the failing call without a
/// debugger; the [`fmt::Display`] output is lowercase and concise, following
/// the Rust API guidelines for error messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of supplied elements does not match the product of the
    /// requested shape.
    LengthMismatch {
        /// Number of elements supplied.
        len: usize,
        /// Requested shape.
        shape: Vec<usize>,
    },
    /// Two operand shapes are incompatible for the attempted operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Left-hand operand shape.
        lhs: Vec<usize>,
        /// Right-hand operand shape.
        rhs: Vec<usize>,
    },
    /// The operand has the wrong rank (number of dimensions).
    RankMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Expected rank.
        expected: usize,
        /// Actual shape.
        actual: Vec<usize>,
    },
    /// A convolution/pooling geometry is invalid (e.g. kernel larger than
    /// the padded input, or zero stride).
    InvalidGeometry {
        /// Name of the operation that failed.
        op: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// An axis index is out of range for the operand's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// Rank of the operand.
        rank: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { len, shape } => write!(
                f,
                "data length {len} does not match shape {shape:?} (expected {})",
                shape.iter().product::<usize>()
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => write!(
                f,
                "{op}: expected rank {expected}, got shape {actual:?} of rank {}",
                actual.len()
            ),
            TensorError::InvalidGeometry { op, reason } => {
                write!(f, "{op}: invalid geometry: {reason}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = TensorError::ShapeMismatch {
            op: "add",
            lhs: vec![2, 3],
            rhs: vec![3, 2],
        };
        let msg = e.to_string();
        assert!(msg.contains("add"));
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[3, 2]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn length_mismatch_reports_expected_product() {
        let e = TensorError::LengthMismatch {
            len: 5,
            shape: vec![2, 3],
        };
        assert!(e.to_string().contains("expected 6"));
    }
}
