//! The dense `f32` tensor type.

use std::fmt;

use crate::shape::{flat_index, numel, strides_for};
use crate::{broadcast_shapes, scratch, Result, TensorError};

/// A dense, row-major (C-contiguous) `f32` tensor of arbitrary rank.
///
/// `Tensor` is the value type of the whole reproduction stack: images,
/// feature maps, convolution weights and gradients are all `Tensor`s.
/// Batches of images use the `NCHW` layout (batch, channel, height, width).
///
/// Element-wise binary operations support NumPy-style broadcasting; they
/// panic on incompatible shapes (see the per-method `Panics` sections) —
/// shape mismatches are programmer errors, not recoverable conditions.
///
/// # Examples
///
/// ```
/// use sf_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![1.0, -2.0, 3.0, -4.0], &[2, 2])?;
/// let relu = x.map(|v| v.max(0.0));
/// assert_eq!(relu.data(), &[1.0, 0.0, 3.0, 0.0]);
/// # Ok::<(), sf_tensor::TensorError>(())
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; numel(shape)],
        }
    }

    /// Creates a zeroed tensor whose storage is drawn from this thread's
    /// [`scratch`] pool — for kernel outputs in hot loops, where the
    /// buffer eventually flows back via [`scratch::recycle`].
    pub(crate) fn zeros_pooled(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: scratch::take_zeroed(numel(shape)),
        }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; numel(shape)],
        }
    }

    /// Creates a rank-0 (scalar) tensor holding `value`.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: vec![],
            data: vec![value],
        }
    }

    /// Creates a tensor from a flat `Vec` and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not
    /// equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        if data.len() != numel(shape) {
            return Err(TensorError::LengthMismatch {
                len: data.len(),
                shape: shape.to_vec(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates a tensor by evaluating `f` at every multi-dimensional index,
    /// iterating in row-major order.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let n = numel(shape);
        let mut data = Vec::with_capacity(n);
        let mut index = vec![0usize; shape.len()];
        for _ in 0..n {
            data.push(f(&index));
            // Advance the row-major odometer.
            for d in (0..shape.len()).rev() {
                index[d] += 1;
                if index[d] < shape[d] {
                    break;
                }
                index[d] = 0;
            }
        }
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a 1-D tensor with `n` evenly spaced values in `[start, end]`
    /// (inclusive endpoints when `n >= 2`).
    pub fn linspace(start: f32, end: f32, n: usize) -> Self {
        if n == 0 {
            return Tensor::zeros(&[0]);
        }
        if n == 1 {
            return Tensor::from_vec(vec![start], &[1]).expect("length matches");
        }
        let step = (end - start) / (n as f32 - 1.0);
        let data = (0..n).map(|i| start + step * i as f32).collect();
        Tensor {
            shape: vec![n],
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The tensor's rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// A view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// A mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat data buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[flat_index(&self.shape, index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let i = flat_index(&self.shape, index);
        self.data[i] = value;
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the new shape has a
    /// different number of elements.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        if numel(shape) != self.data.len() {
            return Err(TensorError::LengthMismatch {
                len: self.data.len(),
                shape: shape.to_vec(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Applies `f` element-wise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = scratch::take_spare(self.data.len());
        data.extend(self.data.iter().map(|&v| f(v)));
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two tensors element-wise with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes cannot be broadcast together.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        if self.shape == other.shape {
            // Fast path: identical shapes.
            let mut data = scratch::take_spare(self.data.len());
            data.extend(
                self.data
                    .iter()
                    .zip(other.data.iter())
                    .map(|(&a, &b)| f(a, b)),
            );
            return Tensor {
                shape: self.shape.clone(),
                data,
            };
        }
        let out_shape =
            broadcast_shapes(&self.shape, &other.shape).unwrap_or_else(|e| panic!("zip_map: {e}"));
        let lhs_strides = broadcast_strides(&self.shape, &out_shape);
        let rhs_strides = broadcast_strides(&other.shape, &out_shape);
        let n = numel(&out_shape);
        if n == 0 {
            return Tensor {
                shape: out_shape,
                data: Vec::new(),
            };
        }
        let mut data = scratch::take_spare(n);
        // Trailing dims where each operand is either contiguous or constant
        // form a block the inner loop can stream without any index
        // arithmetic; the odometer then only walks the leading dims. The
        // common broadcasts (per-channel [C,1,1] statistics against NCHW,
        // row/column vectors against matrices) all collapse this way.
        let (outer_dims, block, lhs_contig, rhs_contig) =
            broadcast_block(&out_shape, &lhs_strides, &rhs_strides);
        let mut index = vec![0usize; outer_dims];
        for _ in 0..n / block {
            let li: usize = index.iter().zip(&lhs_strides).map(|(&i, &s)| i * s).sum();
            let ri: usize = index.iter().zip(&rhs_strides).map(|(&i, &s)| i * s).sum();
            match (lhs_contig, rhs_contig) {
                (true, true) => {
                    let lhs = &self.data[li..li + block];
                    let rhs = &other.data[ri..ri + block];
                    data.extend(lhs.iter().zip(rhs).map(|(&a, &b)| f(a, b)));
                }
                (true, false) => {
                    let b = other.data[ri];
                    data.extend(self.data[li..li + block].iter().map(|&a| f(a, b)));
                }
                (false, true) => {
                    let a = self.data[li];
                    data.extend(other.data[ri..ri + block].iter().map(|&b| f(a, b)));
                }
                (false, false) => {
                    let (a, b) = (self.data[li], other.data[ri]);
                    data.extend((0..block).map(|_| f(a, b)));
                }
            }
            for d in (0..outer_dims).rev() {
                index[d] += 1;
                if index[d] < out_shape[d] {
                    break;
                }
                index[d] = 0;
            }
        }
        Tensor {
            shape: out_shape,
            data,
        }
    }

    /// Element-wise sum with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes cannot be broadcast together.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes cannot be broadcast together.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise product with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes cannot be broadcast together.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Element-wise quotient with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes cannot be broadcast together.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a / b)
    }

    /// Adds `value` to every element.
    pub fn add_scalar(&self, value: f32) -> Tensor {
        self.map(|v| v + value)
    }

    /// Multiplies every element by `value`.
    pub fn scale(&self, value: f32) -> Tensor {
        self.map(|v| v * value)
    }

    /// In-place `self += other` without broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "add_assign: shapes {:?} and {:?} differ",
            self.shape, other.shape
        );
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other` (axpy) without broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "axpy: shapes {:?} and {:?} differ",
            self.shape, other.shape
        );
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        for v in &mut self.data {
            *v = value;
        }
    }

    /// Sum of all elements (as `f64` accumulation for stability).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&v| v as f64).sum::<f64>() as f32
    }

    /// Arithmetic mean of all elements; 0 for empty tensors.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element; `f32::NEG_INFINITY` for empty tensors.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element; `f32::INFINITY` for empty tensors.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Squared L2 norm of the tensor viewed as a flat vector.
    pub fn norm_sq(&self) -> f32 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>() as f32
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Extracts the `n`-th slice along the first axis (e.g. one image from
    /// an `NCHW` batch, yielding `CHW`).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank 0 or `n` is out of bounds.
    pub fn index_axis0(&self, n: usize) -> Tensor {
        assert!(self.rank() >= 1, "index_axis0 requires rank >= 1");
        assert!(
            n < self.shape[0],
            "index {n} out of bounds for axis of size {}",
            self.shape[0]
        );
        let inner: usize = self.shape[1..].iter().product();
        let data = self.data[n * inner..(n + 1) * inner].to_vec();
        Tensor {
            shape: self.shape[1..].to_vec(),
            data,
        }
    }

    /// Stacks rank-`k` tensors of identical shape into a rank-`k+1` tensor
    /// along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the tensors disagree in
    /// shape, or [`TensorError::InvalidGeometry`] if `items` is empty.
    pub fn stack(items: &[Tensor]) -> Result<Tensor> {
        let refs: Vec<&Tensor> = items.iter().collect();
        Tensor::stack_refs(&refs)
    }

    /// Like [`Tensor::stack`] but takes borrowed tensors, so callers that
    /// hold `&Tensor`s (batch assembly, the serving batcher) can build the
    /// stacked buffer with one slice copy per item and no intermediate
    /// clones.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::stack`].
    pub fn stack_refs(items: &[&Tensor]) -> Result<Tensor> {
        let first = *items.first().ok_or_else(|| TensorError::InvalidGeometry {
            op: "stack",
            reason: "cannot stack zero tensors".to_string(),
        })?;
        let mut data = scratch::take_spare(first.numel() * items.len());
        for item in items {
            if item.shape != first.shape {
                return Err(TensorError::ShapeMismatch {
                    op: "stack",
                    lhs: first.shape.clone(),
                    rhs: item.shape.clone(),
                });
            }
            data.extend_from_slice(&item.data);
        }
        let mut shape = Vec::with_capacity(first.rank() + 1);
        shape.push(items.len());
        shape.extend_from_slice(&first.shape);
        Ok(Tensor { shape, data })
    }

    /// Concatenates tensors along `axis`. All other dimensions must match.
    ///
    /// # Errors
    ///
    /// Returns an error if `items` is empty, `axis` is out of range, or the
    /// non-`axis` dimensions disagree.
    pub fn concat(items: &[Tensor], axis: usize) -> Result<Tensor> {
        let first = items.first().ok_or_else(|| TensorError::InvalidGeometry {
            op: "concat",
            reason: "cannot concat zero tensors".to_string(),
        })?;
        if axis >= first.rank() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: first.rank(),
            });
        }
        let mut axis_total = 0usize;
        for item in items {
            if item.rank() != first.rank() {
                return Err(TensorError::ShapeMismatch {
                    op: "concat",
                    lhs: first.shape.clone(),
                    rhs: item.shape.clone(),
                });
            }
            for d in 0..first.rank() {
                if d != axis && item.shape[d] != first.shape[d] {
                    return Err(TensorError::ShapeMismatch {
                        op: "concat",
                        lhs: first.shape.clone(),
                        rhs: item.shape.clone(),
                    });
                }
            }
            axis_total += item.shape[axis];
        }
        let mut out_shape = first.shape.clone();
        out_shape[axis] = axis_total;
        let outer: usize = first.shape[..axis].iter().product();
        let inner: usize = first.shape[axis + 1..].iter().product();
        let mut data = Vec::with_capacity(numel(&out_shape));
        for o in 0..outer {
            for item in items {
                let block = item.shape[axis] * inner;
                data.extend_from_slice(&item.data[o * block..(o + 1) * block]);
            }
        }
        Ok(Tensor {
            shape: out_shape,
            data,
        })
    }

    /// Reverses the last axis — for `CHW`/`NCHW` image tensors this is a
    /// horizontal mirror, the classic segmentation augmentation.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank 0.
    pub fn flip_last_axis(&self) -> Tensor {
        assert!(self.rank() >= 1, "flip_last_axis requires rank >= 1");
        let w = *self.shape.last().expect("rank checked above");
        let mut out = self.clone();
        if w <= 1 {
            return out;
        }
        let rows = self.data.len() / w;
        let dst = out.data_mut();
        for r in 0..rows {
            dst[r * w..(r + 1) * w].reverse();
        }
        out
    }

    /// Returns `true` if every element differs from `other` by at most
    /// `tol` (absolute). Shapes must match exactly.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

/// Finds the largest trailing block over which both operands can be
/// streamed linearly: across the block's dims each operand must be either
/// contiguous (strides matching the output's trailing layout) or constant
/// (all-zero strides). Returns `(outer_dims, block_len, lhs_contiguous,
/// rhs_contiguous)`; the odometer walks only the remaining `outer_dims`
/// leading dims.
fn broadcast_block(
    out_shape: &[usize],
    lhs_strides: &[usize],
    rhs_strides: &[usize],
) -> (usize, usize, bool, bool) {
    let mut block = 1usize;
    let mut lhs_contig = false;
    let mut rhs_contig = false;
    let mut d = out_shape.len();
    while d > 0 {
        let dim = d - 1;
        let size = out_shape[dim];
        if size == 1 {
            d -= 1;
            continue;
        }
        match (
            extend_block(lhs_strides[dim], lhs_contig, block),
            extend_block(rhs_strides[dim], rhs_contig, block),
        ) {
            (Some(lc), Some(rc)) => {
                lhs_contig = lc;
                rhs_contig = rc;
                block *= size;
                d -= 1;
            }
            _ => return (d, block, lhs_contig, rhs_contig),
        }
    }
    (d, block, lhs_contig, rhs_contig)
}

/// Whether a dim with `stride` keeps an operand streamable over a grown
/// block, given it was contiguous (`contig`) over the current `block`
/// elements. Returns the new contiguity, or `None` if the dim breaks the
/// pattern (e.g. a broadcast axis below a real one).
fn extend_block(stride: usize, contig: bool, block: usize) -> Option<bool> {
    if stride == 0 && !contig {
        Some(false)
    } else if stride == block {
        Some(true)
    } else {
        None
    }
}

/// Strides for reading `shape` as if broadcast to `out_shape` (stride 0 on
/// broadcast axes).
fn broadcast_strides(shape: &[usize], out_shape: &[usize]) -> Vec<usize> {
    let strides = strides_for(shape);
    let mut out = vec![0usize; out_shape.len()];
    let offset = out_shape.len() - shape.len();
    for (i, (&dim, &stride)) in shape.iter().zip(&strides).enumerate() {
        out[offset + i] = if dim == 1 { 0 } else { stride };
    }
    out
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(
                f,
                ", data=[{:.4}, {:.4}, .. {} elems .. {:.4}])",
                self.data[0],
                self.data[1],
                self.data.len(),
                self.data[self.data.len() - 1]
            )
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl From<f32> for Tensor {
    fn from(value: f32) -> Self {
        Tensor::scalar(value)
    }
}

impl From<Vec<f32>> for Tensor {
    fn from(data: Vec<f32>) -> Self {
        let shape = vec![data.len()];
        Tensor { shape, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 3]).numel(), 6);
        assert_eq!(Tensor::ones(&[4]).sum(), 4.0);
        assert_eq!(Tensor::full(&[2], 2.5).data(), &[2.5, 2.5]);
        assert_eq!(Tensor::scalar(7.0).rank(), 0);
        assert_eq!(Tensor::scalar(7.0).at(&[]), 7.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn from_fn_row_major_order() {
        let t = Tensor::from_fn(&[2, 3], |ix| (ix[0] * 10 + ix[1]) as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn linspace_endpoints() {
        let t = Tensor::linspace(0.0, 1.0, 5);
        assert_eq!(t.data(), &[0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(Tensor::linspace(3.0, 9.0, 1).data(), &[3.0]);
        assert_eq!(Tensor::linspace(0.0, 1.0, 0).numel(), 0);
    }

    #[test]
    fn at_and_set() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 0], 5.0);
        assert_eq!(t.at(&[1, 0]), 5.0);
        assert_eq!(t.at(&[0, 0]), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let r = t.reshape(&[4]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn broadcasting_add_row() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let row = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]).unwrap();
        let c = a.add(&row);
        assert_eq!(c.data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn broadcasting_mul_column() {
        let a = Tensor::ones(&[2, 3]);
        let col = Tensor::from_vec(vec![2.0, 3.0], &[2, 1]).unwrap();
        let c = a.mul(&col);
        assert_eq!(c.data(), &[2.0, 2.0, 2.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "zip_map")]
    fn incompatible_broadcast_panics() {
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[3, 2]);
        let _ = a.add(&b);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.norm_sq(), 14.0);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::ones(&[2]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }

    #[test]
    fn index_axis0_extracts_image() {
        let t = Tensor::from_fn(&[2, 3, 4], |ix| ix[0] as f32);
        let img = t.index_axis0(1);
        assert_eq!(img.shape(), &[3, 4]);
        assert!(img.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn stack_and_concat() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::zeros(&[2, 2]);
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.shape(), &[2, 2, 2]);
        let c = Tensor::concat(&[a.clone(), b.clone()], 1).unwrap();
        assert_eq!(c.shape(), &[2, 4]);
        assert_eq!(c.data(), &[1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
        let c0 = Tensor::concat(&[a, b], 0).unwrap();
        assert_eq!(c0.shape(), &[4, 2]);
    }

    #[test]
    fn concat_rejects_mismatched() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::ones(&[3, 3]);
        assert!(Tensor::concat(&[a.clone(), b], 0).is_err());
        assert!(Tensor::concat(&[a], 5).is_err());
        assert!(Tensor::concat(&[], 0).is_err());
    }

    #[test]
    fn flip_last_axis_mirrors_rows() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let f = t.flip_last_axis();
        assert_eq!(f.data(), &[3.0, 2.0, 1.0, 6.0, 5.0, 4.0]);
        // Involution.
        assert_eq!(f.flip_last_axis(), t);
        // Width-1 tensors are unchanged.
        let col = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]).unwrap();
        assert_eq!(col.flip_last_axis(), col);
    }

    #[test]
    fn allclose_tolerance() {
        let a = Tensor::ones(&[3]);
        let b = a.add_scalar(1e-4);
        assert!(a.allclose(&b, 1e-3));
        assert!(!a.allclose(&b, 1e-5));
        assert!(!a.allclose(&Tensor::ones(&[4]), 1.0));
    }

    #[test]
    fn debug_output_is_nonempty() {
        let t = Tensor::zeros(&[100]);
        let s = format!("{t:?}");
        assert!(s.contains("shape"));
        let small = Tensor::zeros(&[2]);
        assert!(format!("{small:?}").contains("data"));
    }

    #[test]
    fn conversions() {
        let t: Tensor = 3.0f32.into();
        assert_eq!(t.rank(), 0);
        let v: Tensor = vec![1.0, 2.0].into();
        assert_eq!(v.shape(), &[2]);
        assert_eq!(Tensor::default().numel(), 1);
    }
}
