//! Shape and stride arithmetic shared by the tensor kernels.

use crate::{Result, TensorError};

/// Computes row-major (C-contiguous) strides for `shape`.
///
/// The stride of the last dimension is always 1; an empty shape yields an
/// empty stride vector (scalar tensors are represented by shape `[]`
/// internally as `[1]`-like storage).
///
/// # Examples
///
/// ```
/// assert_eq!(sf_tensor::strides_for(&[2, 3, 4]), vec![12, 4, 1]);
/// ```
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![0; shape.len()];
    let mut acc = 1usize;
    for (s, &dim) in strides.iter_mut().rev().zip(shape.iter().rev()) {
        *s = acc;
        acc *= dim;
    }
    strides
}

/// Converts a multi-dimensional index to a flat row-major offset.
///
/// # Panics
///
/// Panics if `index.len() != shape.len()` or any coordinate is out of
/// bounds. This is a programmer error, not a recoverable condition.
pub fn flat_index(shape: &[usize], index: &[usize]) -> usize {
    assert_eq!(
        index.len(),
        shape.len(),
        "index rank {} does not match shape rank {}",
        index.len(),
        shape.len()
    );
    let mut flat = 0usize;
    let mut stride = 1usize;
    for i in (0..shape.len()).rev() {
        assert!(
            index[i] < shape[i],
            "index {:?} out of bounds for shape {:?}",
            index,
            shape
        );
        flat += index[i] * stride;
        stride *= shape[i];
    }
    flat
}

/// Computes the broadcast of two shapes under NumPy-style rules: shapes are
/// right-aligned and each dimension pair must be equal or contain a 1.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the shapes cannot be
/// broadcast together.
///
/// # Examples
///
/// ```
/// let out = sf_tensor::broadcast_shapes(&[4, 1, 3], &[2, 3])?;
/// assert_eq!(out, vec![4, 2, 3]);
/// # Ok::<(), sf_tensor::TensorError>(())
/// ```
pub fn broadcast_shapes(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>> {
    let rank = lhs.len().max(rhs.len());
    let mut out = vec![0; rank];
    for i in 0..rank {
        let l = lhs.len().checked_sub(1 + i).map(|j| lhs[j]).unwrap_or(1);
        let r = rhs.len().checked_sub(1 + i).map(|j| rhs[j]).unwrap_or(1);
        out[rank - 1 - i] = if l == r || r == 1 {
            l
        } else if l == 1 {
            r
        } else {
            return Err(TensorError::ShapeMismatch {
                op: "broadcast",
                lhs: lhs.to_vec(),
                rhs: rhs.to_vec(),
            });
        };
    }
    Ok(out)
}

/// Number of elements implied by `shape`.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[5]), vec![1]);
        assert_eq!(strides_for(&[]), Vec::<usize>::new());
    }

    #[test]
    fn flat_index_round_trip() {
        let shape = [2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let f = flat_index(&shape, &[i, j, k]);
                    assert!(f < 24);
                    assert!(seen.insert(f), "duplicate flat index");
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn flat_index_out_of_bounds_panics() {
        flat_index(&[2, 2], &[2, 0]);
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[3], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[], &[4]).unwrap(), vec![4]);
    }

    #[test]
    fn broadcast_incompatible() {
        assert!(broadcast_shapes(&[2, 3], &[3, 2]).is_err());
        assert!(broadcast_shapes(&[4], &[5]).is_err());
    }

    #[test]
    fn numel_matches_product() {
        assert_eq!(numel(&[2, 3, 4]), 24);
        assert_eq!(numel(&[]), 1);
        assert_eq!(numel(&[0, 7]), 0);
    }
}
