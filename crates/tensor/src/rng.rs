//! Seeded random tensor generation.
//!
//! All stochastic code in the reproduction flows through [`TensorRng`] so
//! that every experiment is reproducible from a single `u64` seed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::Tensor;

/// A seeded random number generator producing tensors.
///
/// # Examples
///
/// ```
/// use sf_tensor::TensorRng;
///
/// let mut a = TensorRng::seed_from(42);
/// let mut b = TensorRng::seed_from(42);
/// assert_eq!(a.uniform(&[4], -1.0, 1.0), b.uniform(&[4], -1.0, 1.0));
/// ```
#[derive(Debug)]
pub struct TensorRng {
    inner: StdRng,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        TensorRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// layer or scene its own stream while keeping one master seed.
    pub fn fork(&mut self) -> TensorRng {
        TensorRng::seed_from(self.inner.random::<u64>())
    }

    /// A single uniform sample in `[lo, hi)`.
    pub fn uniform_scalar(&mut self, lo: f32, hi: f32) -> f32 {
        if lo == hi {
            lo
        } else {
            self.inner.random_range(lo..hi)
        }
    }

    /// A single standard-normal sample (Box–Muller).
    pub fn normal_scalar(&mut self) -> f32 {
        // Box–Muller with guards against log(0).
        let u1: f32 = self.inner.random_range(f32::EPSILON..1.0);
        let u2: f32 = self.inner.random::<f32>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.random_range(0..n)
    }

    /// A Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.random_bool(p.clamp(0.0, 1.0))
    }

    /// Tensor of i.i.d. uniform samples in `[lo, hi)`.
    pub fn uniform(&mut self, shape: &[usize], lo: f32, hi: f32) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| self.uniform_scalar(lo, hi)).collect();
        Tensor::from_vec(data, shape).expect("length matches by construction")
    }

    /// Tensor of i.i.d. normal samples with the given mean and standard
    /// deviation.
    pub fn normal(&mut self, shape: &[usize], mean: f32, std: f32) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| mean + std * self.normal_scalar()).collect();
        Tensor::from_vec(data, shape).expect("length matches by construction")
    }

    /// Kaiming/He-normal initialisation for a conv weight of shape
    /// `[O, C, KH, KW]` (or a linear weight `[O, I]`): zero-mean normal
    /// with `std = sqrt(2 / fan_in)`.
    ///
    /// # Panics
    ///
    /// Panics if `shape` has fewer than 2 dimensions or zero fan-in.
    pub fn kaiming(&mut self, shape: &[usize]) -> Tensor {
        assert!(shape.len() >= 2, "kaiming init requires rank >= 2 weights");
        let fan_in: usize = shape[1..].iter().product();
        assert!(fan_in > 0, "kaiming init requires non-zero fan-in");
        let std = (2.0 / fan_in as f32).sqrt();
        self.normal(shape, 0.0, std)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.random_range(0..=i);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let mut a = TensorRng::seed_from(7);
        let mut b = TensorRng::seed_from(7);
        assert_eq!(a.normal(&[8], 0.0, 1.0), b.normal(&[8], 0.0, 1.0));
        assert_ne!(
            TensorRng::seed_from(1).uniform(&[8], 0.0, 1.0),
            TensorRng::seed_from(2).uniform(&[8], 0.0, 1.0)
        );
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = TensorRng::seed_from(3);
        let t = rng.uniform(&[1000], -2.0, 3.0);
        assert!(t.data().iter().all(|&v| (-2.0..3.0).contains(&v)));
        assert_eq!(rng.uniform_scalar(1.5, 1.5), 1.5);
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = TensorRng::seed_from(11);
        let t = rng.normal(&[20_000], 1.0, 2.0);
        let mean = t.mean();
        let var = t.map(|v| (v - mean) * (v - mean)).mean();
        assert!((mean - 1.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.3, "var={var}");
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = TensorRng::seed_from(5);
        let w = rng.kaiming(&[16, 32, 3, 3]);
        let std = w.map(|v| v * v).mean().sqrt();
        let expect = (2.0f32 / (32.0 * 9.0)).sqrt();
        assert!((std - expect).abs() < expect * 0.2, "std={std} vs {expect}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = TensorRng::seed_from(9);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.uniform(&[4], 0.0, 1.0), c2.uniform(&[4], 0.0, 1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = TensorRng::seed_from(13);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // vanishingly unlikely
    }

    #[test]
    fn index_and_chance() {
        let mut rng = TensorRng::seed_from(17);
        for _ in 0..100 {
            assert!(rng.index(5) < 5);
        }
        // Probability 0 and 1 are exact.
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
