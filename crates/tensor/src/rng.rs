//! Seeded random tensor generation.
//!
//! All stochastic code in the reproduction flows through [`TensorRng`] so
//! that every experiment is reproducible from a single `u64` seed. The
//! generator is an in-repo xoshiro256** seeded through SplitMix64 — no
//! external crate, so the workspace builds offline; the stream is part of
//! the reproduction's determinism contract and must not change casually.

use crate::Tensor;

/// A seeded random number generator producing tensors.
///
/// # Examples
///
/// ```
/// use sf_tensor::TensorRng;
///
/// let mut a = TensorRng::seed_from(42);
/// let mut b = TensorRng::seed_from(42);
/// assert_eq!(a.uniform(&[4], -1.0, 1.0), b.uniform(&[4], -1.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct TensorRng {
    /// xoshiro256** state, never all-zero (SplitMix64 seeding guarantees
    /// this for every u64 seed).
    state: [u64; 4],
}

/// SplitMix64: the recommended seeder for the xoshiro family. Decorrelates
/// consecutive integer seeds into well-mixed initial states.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut x = seed;
        TensorRng {
            state: [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ],
        }
    }

    /// The next raw 64-bit output (xoshiro256**).
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform sample in `[0, 1)` with 24 bits of mantissa entropy.
    fn unit_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// A uniform sample in `[0, 1)` with 53 bits of mantissa entropy.
    fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Derives an independent child generator; useful for giving each
    /// layer or scene its own stream while keeping one master seed.
    pub fn fork(&mut self) -> TensorRng {
        let seed = self.next_u64();
        TensorRng::seed_from(seed)
    }

    /// A single uniform sample in `[lo, hi)`.
    pub fn uniform_scalar(&mut self, lo: f32, hi: f32) -> f32 {
        if lo == hi {
            lo
        } else {
            lo + (hi - lo) * self.unit_f32()
        }
    }

    /// A single standard-normal sample (Box–Muller).
    pub fn normal_scalar(&mut self) -> f32 {
        // Box–Muller with guards against log(0).
        let u1: f32 = f32::EPSILON + (1.0 - f32::EPSILON) * self.unit_f32();
        let u2: f32 = self.unit_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// A uniform integer in `[0, n)` (Lemire's multiply–shift; the bias of
    /// at most `n / 2^64` is far below anything observable here).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// A Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// Tensor of i.i.d. uniform samples in `[lo, hi)`.
    pub fn uniform(&mut self, shape: &[usize], lo: f32, hi: f32) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| self.uniform_scalar(lo, hi)).collect();
        Tensor::from_vec(data, shape).expect("length matches by construction")
    }

    /// Tensor of i.i.d. normal samples with the given mean and standard
    /// deviation.
    pub fn normal(&mut self, shape: &[usize], mean: f32, std: f32) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| mean + std * self.normal_scalar()).collect();
        Tensor::from_vec(data, shape).expect("length matches by construction")
    }

    /// Kaiming/He-normal initialisation for a conv weight of shape
    /// `[O, C, KH, KW]` (or a linear weight `[O, I]`): zero-mean normal
    /// with `std = sqrt(2 / fan_in)`.
    ///
    /// # Panics
    ///
    /// Panics if `shape` has fewer than 2 dimensions or zero fan-in.
    pub fn kaiming(&mut self, shape: &[usize]) -> Tensor {
        assert!(shape.len() >= 2, "kaiming init requires rank >= 2 weights");
        let fan_in: usize = shape[1..].iter().product();
        assert!(fan_in > 0, "kaiming init requires non-zero fan-in");
        let std = (2.0 / fan_in as f32).sqrt();
        self.normal(shape, 0.0, std)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let mut a = TensorRng::seed_from(7);
        let mut b = TensorRng::seed_from(7);
        assert_eq!(a.normal(&[8], 0.0, 1.0), b.normal(&[8], 0.0, 1.0));
        assert_ne!(
            TensorRng::seed_from(1).uniform(&[8], 0.0, 1.0),
            TensorRng::seed_from(2).uniform(&[8], 0.0, 1.0)
        );
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = TensorRng::seed_from(3);
        let t = rng.uniform(&[1000], -2.0, 3.0);
        assert!(t.data().iter().all(|&v| (-2.0..3.0).contains(&v)));
        assert_eq!(rng.uniform_scalar(1.5, 1.5), 1.5);
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = TensorRng::seed_from(11);
        let t = rng.normal(&[20_000], 1.0, 2.0);
        let mean = t.mean();
        let var = t.map(|v| (v - mean) * (v - mean)).mean();
        assert!((mean - 1.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.3, "var={var}");
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = TensorRng::seed_from(5);
        let w = rng.kaiming(&[16, 32, 3, 3]);
        let std = w.map(|v| v * v).mean().sqrt();
        let expect = (2.0f32 / (32.0 * 9.0)).sqrt();
        assert!((std - expect).abs() < expect * 0.2, "std={std} vs {expect}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = TensorRng::seed_from(9);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.uniform(&[4], 0.0, 1.0), c2.uniform(&[4], 0.0, 1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = TensorRng::seed_from(13);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // vanishingly unlikely
    }

    #[test]
    fn index_and_chance() {
        let mut rng = TensorRng::seed_from(17);
        for _ in 0..100 {
            assert!(rng.index(5) < 5);
        }
        // Probability 0 and 1 are exact.
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
