//! Dense `f32` N-dimensional tensors and the numerical kernels used by the
//! sensor-fusion reproduction: element-wise arithmetic, matrix
//! multiplication, `im2col`-based 2-D convolution (forward and backward),
//! pooling, up-sampling and reductions.
//!
//! The crate is deliberately self-contained — the whole deep-learning stack
//! of the reproduction is built on top of it — and favours clarity and
//! testability over peak throughput. All data is stored row-major
//! (C-contiguous); image batches use the `NCHW` layout.
//!
//! # Examples
//!
//! ```
//! use sf_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::ones(&[2, 2]);
//! let c = a.add(&b);
//! assert_eq!(c.data(), &[2.0, 3.0, 4.0, 5.0]);
//! # Ok::<(), sf_tensor::TensorError>(())
//! ```

mod conv;
mod error;
pub mod int8;
mod linalg;
mod pool;
mod reduce;
mod rng;
pub mod scratch;
mod shape;
mod tensor;
pub mod testkit;

pub use conv::{col2im, conv2d, conv2d_backward, im2col, im2col_into, Conv2dSpec};
pub use error::TensorError;
pub use linalg::{matmul, matmul_into, matmul_transpose_a, matmul_transpose_b, transpose2d};
pub use pool::{
    avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward, upsample_nearest2d,
    upsample_nearest2d_backward,
};
pub use reduce::{Axis, Reduction};
pub use rng::TensorRng;
pub use shape::{broadcast_shapes, strides_for};
pub use tensor::Tensor;

/// Result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
