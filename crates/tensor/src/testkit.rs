//! A small deterministic property-test harness.
//!
//! Replaces the external `proptest` dependency with a hermetic, in-repo
//! equivalent: every property runs over a fixed number of seeded cases, so
//! a failure is reproducible from the reported case number alone — no
//! shrinking, no persisted regression files. Crates across the workspace
//! use it from their `#[cfg(test)]` code via `sf_tensor::testkit`.
//!
//! # Examples
//!
//! ```
//! use sf_tensor::testkit::check_cases;
//!
//! check_cases(32, |c| {
//!     let shape = c.shape(1..4, 1..5);
//!     let t = c.rng().uniform(&shape, -1.0, 1.0);
//!     assert_eq!(t.numel(), shape.iter().product::<usize>());
//! });
//! ```

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::TensorRng;

/// Per-case context handed to a property: the case number plus a seeded
/// generator for drawing inputs.
pub struct CaseCtx {
    /// Zero-based case number; also the seed of this case's generator, so
    /// `c.case` doubles as the value for "arbitrary seed" style properties.
    pub case: u64,
    rng: TensorRng,
}

impl CaseCtx {
    /// The case's seeded generator, for drawing arbitrary tensor inputs.
    pub fn rng(&mut self) -> &mut TensorRng {
        &mut self.rng
    }

    /// A fresh `u64` seed derived from the case stream, for properties
    /// quantified over seeds.
    pub fn seed(&mut self) -> u64 {
        let mut child = self.rng.fork();
        child.index(usize::MAX) as u64
    }

    /// An arbitrary shape with rank drawn from `rank` and every dimension
    /// drawn from `dims` (both half-open, lower bounds must be ≥ 1).
    pub fn shape(&mut self, rank: Range<usize>, dims: Range<usize>) -> Vec<usize> {
        let r = self.usize_in(rank.start, rank.end);
        (0..r)
            .map(|_| self.usize_in(dims.start, dims.end))
            .collect()
    }

    /// A uniform `f32` in `[lo, hi)`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        self.rng.uniform_scalar(lo, hi)
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "usize_in requires lo < hi, got {lo}..{hi}");
        lo + self.rng.index(hi - lo)
    }
}

/// Runs `property` over `cases` deterministic cases (case numbers `0..cases`,
/// each seeding its own [`TensorRng`]), re-raising the first failure with
/// the case number attached.
///
/// Case 0 always runs, which keeps seed-zero regressions (the only seed the
/// old proptest setup ever persisted) permanently covered.
///
/// # Panics
///
/// Panics if `property` panics for any case, after printing which one.
pub fn check_cases(cases: u64, mut property: impl FnMut(&mut CaseCtx)) {
    for case in 0..cases {
        let mut ctx = CaseCtx {
            case,
            rng: TensorRng::seed_from(case),
        };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| property(&mut ctx))) {
            eprintln!("property failed at case {case}/{cases} (deterministic; rerun reproduces)");
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<f32> = Vec::new();
        check_cases(8, |c| first.push(c.f32_in(0.0, 1.0)));
        let mut second: Vec<f32> = Vec::new();
        check_cases(8, |c| second.push(c.f32_in(0.0, 1.0)));
        assert_eq!(first, second);
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn shape_respects_bounds() {
        check_cases(32, |c| {
            let s = c.shape(1..5, 2..7);
            assert!((1..5).contains(&s.len()));
            assert!(s.iter().all(|d| (2..7).contains(d)));
        });
    }

    #[test]
    fn failure_reports_case() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            check_cases(16, |c| assert!(c.case < 5, "boom at {}", c.case));
        }));
        assert!(caught.is_err());
    }
}
