//! Pooling and up-sampling kernels with exact backward passes.
//!
//! The pooling forward passes split their `N·C` planes across the
//! persistent [`sf_runtime`] worker pool; every plane is computed by the
//! same serial kernel, so results are bit-identical to a serial loop.

use crate::{Result, Tensor, TensorError};

/// Raw-pointer wrapper letting the pooling kernels hand each worker its own
/// disjoint plane of a second output buffer (the `argmax` array).
struct SyncPtr<T>(*mut T);

unsafe impl<T: Send> Send for SyncPtr<T> {}
unsafe impl<T: Send> Sync for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

fn check_nchw(op: &'static str, t: &Tensor) -> Result<(usize, usize, usize, usize)> {
    match t.shape() {
        [n, c, h, w] => Ok((*n, *c, *h, *w)),
        other => Err(TensorError::RankMismatch {
            op,
            expected: 4,
            actual: other.to_vec(),
        }),
    }
}

/// Max pooling over non-overlapping-or-strided `kernel×kernel` windows.
///
/// Returns `(output, argmax)` where `argmax` holds, for every output
/// element, the flat index into `x`'s data of the selected input element —
/// exactly what [`max_pool2d_backward`] needs.
///
/// # Errors
///
/// Returns an error if `x` is not rank 4 or the kernel does not fit.
pub fn max_pool2d(x: &Tensor, kernel: usize, stride: usize) -> Result<(Tensor, Vec<usize>)> {
    let (n, c, h, w) = check_nchw("max_pool2d", x)?;
    if kernel == 0 || stride == 0 || kernel > h || kernel > w {
        return Err(TensorError::InvalidGeometry {
            op: "max_pool2d",
            reason: format!("kernel {kernel} stride {stride} on input {h}x{w}"),
        });
    }
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let mut out = Tensor::zeros_pooled(&[n, c, oh, ow]);
    let mut argmax = vec![0usize; n * c * oh * ow];
    let src = x.data();
    let out_plane = oh * ow;
    let arg_base = SyncPtr(argmax.as_mut_ptr());
    sf_runtime::parallel_chunks_mut(out.data_mut(), out_plane, |p, dst| {
        // SAFETY: plane `p` exclusively owns argmax[p*out_plane..(p+1)*out_plane],
        // mirroring the disjoint `dst` chunk the pool already handed us.
        let arg =
            unsafe { std::slice::from_raw_parts_mut(arg_base.get().add(p * out_plane), out_plane) };
        let plane = p * h * w;
        let mut oi = 0usize;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0usize;
                for ky in 0..kernel {
                    let iy = oy * stride + ky;
                    let row = plane + iy * w + ox * stride;
                    for kx in 0..kernel {
                        let v = src[row + kx];
                        if v > best {
                            best = v;
                            best_idx = row + kx;
                        }
                    }
                }
                dst[oi] = best;
                arg[oi] = best_idx;
                oi += 1;
            }
        }
    });
    Ok((out, argmax))
}

/// Routes `grad_out` back through a max pool using the `argmax` returned by
/// [`max_pool2d`].
///
/// # Errors
///
/// Returns an error if `grad_out.numel()` disagrees with `argmax.len()`.
pub fn max_pool2d_backward(
    grad_out: &Tensor,
    argmax: &[usize],
    input_shape: &[usize],
) -> Result<Tensor> {
    if grad_out.numel() != argmax.len() {
        return Err(TensorError::LengthMismatch {
            len: argmax.len(),
            shape: grad_out.shape().to_vec(),
        });
    }
    let mut grad_x = Tensor::zeros(input_shape);
    let dst = grad_x.data_mut();
    for (&g, &idx) in grad_out.data().iter().zip(argmax) {
        dst[idx] += g;
    }
    Ok(grad_x)
}

/// Average pooling over `kernel×kernel` windows with the given stride.
///
/// # Errors
///
/// Returns an error if `x` is not rank 4 or the kernel does not fit.
pub fn avg_pool2d(x: &Tensor, kernel: usize, stride: usize) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw("avg_pool2d", x)?;
    if kernel == 0 || stride == 0 || kernel > h || kernel > w {
        return Err(TensorError::InvalidGeometry {
            op: "avg_pool2d",
            reason: format!("kernel {kernel} stride {stride} on input {h}x{w}"),
        });
    }
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let inv = 1.0 / (kernel * kernel) as f32;
    let mut out = Tensor::zeros_pooled(&[n, c, oh, ow]);
    let src = x.data();
    let out_plane = oh * ow;
    sf_runtime::parallel_chunks_mut(out.data_mut(), out_plane, |p, dst| {
        let plane = p * h * w;
        let mut oi = 0usize;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ky in 0..kernel {
                    let row = plane + (oy * stride + ky) * w + ox * stride;
                    for kx in 0..kernel {
                        acc += src[row + kx];
                    }
                }
                dst[oi] = acc * inv;
                oi += 1;
            }
        }
    });
    Ok(out)
}

/// Gradient of [`avg_pool2d`]: spreads each upstream value uniformly over
/// its window.
///
/// # Errors
///
/// Returns an error if shapes are inconsistent with the forward geometry.
pub fn avg_pool2d_backward(
    grad_out: &Tensor,
    input_shape: &[usize],
    kernel: usize,
    stride: usize,
) -> Result<Tensor> {
    let (n, c, h, w) = match input_shape {
        [n, c, h, w] => (*n, *c, *h, *w),
        other => {
            return Err(TensorError::RankMismatch {
                op: "avg_pool2d_backward",
                expected: 4,
                actual: other.to_vec(),
            })
        }
    };
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    if grad_out.shape() != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            op: "avg_pool2d_backward",
            lhs: grad_out.shape().to_vec(),
            rhs: vec![n, c, oh, ow],
        });
    }
    let inv = 1.0 / (kernel * kernel) as f32;
    let mut grad_x = Tensor::zeros(input_shape);
    let dst = grad_x.data_mut();
    let src = grad_out.data();
    let mut oi = 0usize;
    for img in 0..n {
        for ch in 0..c {
            let plane = (img * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = src[oi] * inv;
                    oi += 1;
                    for ky in 0..kernel {
                        let row = plane + (oy * stride + ky) * w + ox * stride;
                        for kx in 0..kernel {
                            dst[row + kx] += g;
                        }
                    }
                }
            }
        }
    }
    Ok(grad_x)
}

/// Nearest-neighbour up-sampling by an integer `factor` in both spatial
/// dimensions.
///
/// # Errors
///
/// Returns an error if `x` is not rank 4 or `factor == 0`.
pub fn upsample_nearest2d(x: &Tensor, factor: usize) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw("upsample_nearest2d", x)?;
    if factor == 0 {
        return Err(TensorError::InvalidGeometry {
            op: "upsample_nearest2d",
            reason: "factor must be >= 1".to_string(),
        });
    }
    let (oh, ow) = (h * factor, w * factor);
    let mut out = Tensor::zeros_pooled(&[n, c, oh, ow]);
    let src = x.data();
    let dst = out.data_mut();
    // Build each output row once by replicating pixels, then duplicate it
    // for the remaining `factor - 1` rows with straight slice copies.
    for plane in 0..n * c {
        let sp = plane * h * w;
        let dp = plane * oh * ow;
        for iy in 0..h {
            let srow = &src[sp + iy * w..sp + (iy + 1) * w];
            let dbase = dp + iy * factor * ow;
            {
                let drow = &mut dst[dbase..dbase + ow];
                for (ix, &v) in srow.iter().enumerate() {
                    drow[ix * factor..(ix + 1) * factor].fill(v);
                }
            }
            for r in 1..factor {
                let (head, tail) = dst.split_at_mut(dbase + r * ow);
                tail[..ow].copy_from_slice(&head[dbase..dbase + ow]);
            }
        }
    }
    Ok(out)
}

/// Gradient of [`upsample_nearest2d`]: sums each `factor×factor` block of
/// the upstream gradient back onto its source pixel.
///
/// # Errors
///
/// Returns an error if `grad_out` is not rank 4 or its spatial size is not
/// a multiple of `factor`.
pub fn upsample_nearest2d_backward(grad_out: &Tensor, factor: usize) -> Result<Tensor> {
    let (n, c, oh, ow) = check_nchw("upsample_nearest2d_backward", grad_out)?;
    if factor == 0 || oh % factor != 0 || ow % factor != 0 {
        return Err(TensorError::InvalidGeometry {
            op: "upsample_nearest2d_backward",
            reason: format!("output {oh}x{ow} is not a multiple of factor {factor}"),
        });
    }
    let (h, w) = (oh / factor, ow / factor);
    let mut grad_x = Tensor::zeros(&[n, c, h, w]);
    let src = grad_out.data();
    let dst = grad_x.data_mut();
    for img in 0..n {
        for ch in 0..c {
            let sp = (img * c + ch) * oh * ow;
            let dp = (img * c + ch) * h * w;
            for oy in 0..oh {
                let srow = sp + oy * ow;
                let drow = dp + (oy / factor) * w;
                for ox in 0..ow {
                    dst[drow + ox / factor] += src[srow + ox];
                }
            }
        }
    }
    Ok(grad_x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_2x2() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.5, //
                -3.0, -4.0, 0.25, 0.75,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let (y, arg) = max_pool2d(&x, 2, 2).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 8.0, -1.0, 0.75]);
        assert_eq!(arg, vec![5, 7, 8, 15]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let x = Tensor::from_fn(&[1, 1, 4, 4], |ix| (ix[2] * 4 + ix[3]) as f32);
        let (y, arg) = max_pool2d(&x, 2, 2).unwrap();
        let g = Tensor::ones(y.shape());
        let gx = max_pool2d_backward(&g, &arg, x.shape()).unwrap();
        // Max of every 2x2 block is its bottom-right element.
        assert_eq!(gx.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(gx.at(&[0, 0, 1, 3]), 1.0);
        assert_eq!(gx.at(&[0, 0, 3, 1]), 1.0);
        assert_eq!(gx.at(&[0, 0, 3, 3]), 1.0);
        assert_eq!(gx.sum(), 4.0);
    }

    #[test]
    fn avg_pool_is_block_mean() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]).unwrap();
        let y = avg_pool2d(&x, 2, 2).unwrap();
        assert_eq!(y.data(), &[4.0]);
    }

    #[test]
    fn avg_pool_backward_uniform() {
        let g = Tensor::from_vec(vec![8.0], &[1, 1, 1, 1]).unwrap();
        let gx = avg_pool2d_backward(&g, &[1, 1, 2, 2], 2, 2).unwrap();
        assert_eq!(gx.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn upsample_repeats_pixels() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = upsample_nearest2d(&x, 2).unwrap();
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
        assert_eq!(y.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(y.at(&[0, 0, 0, 1]), 1.0);
        assert_eq!(y.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(y.at(&[0, 0, 3, 3]), 4.0);
    }

    #[test]
    fn upsample_backward_sums_blocks() {
        let g = Tensor::ones(&[1, 1, 4, 4]);
        let gx = upsample_nearest2d_backward(&g, 2).unwrap();
        assert_eq!(gx.shape(), &[1, 1, 2, 2]);
        assert!(gx.data().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn upsample_round_trip_is_identity_on_constant() {
        let x = Tensor::full(&[2, 3, 4, 4], 2.5);
        let up = upsample_nearest2d(&x, 3).unwrap();
        let down = avg_pool2d(&up, 3, 3).unwrap();
        assert!(down.allclose(&x, 1e-6));
    }

    #[test]
    fn pooling_geometry_errors() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(max_pool2d(&x, 3, 1).is_err());
        assert!(max_pool2d(&x, 2, 0).is_err());
        assert!(avg_pool2d(&x, 0, 1).is_err());
        assert!(upsample_nearest2d(&x, 0).is_err());
        assert!(upsample_nearest2d_backward(&Tensor::zeros(&[1, 1, 3, 3]), 2).is_err());
        assert!(max_pool2d(&Tensor::zeros(&[2, 2]), 2, 2).is_err());
    }

    #[test]
    fn strided_max_pool_overlapping() {
        let x = Tensor::from_fn(&[1, 1, 3, 3], |ix| (ix[2] * 3 + ix[3]) as f32);
        let (y, _) = max_pool2d(&x, 2, 1).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 5.0, 7.0, 8.0]);
    }
}
