//! 2-D convolution via `im2col`, with exact forward and backward passes.
//!
//! Layout conventions (all row-major):
//! - input `x`: `[N, C, H, W]`
//! - weight `w`: `[O, C, KH, KW]`
//! - bias `b`: `[O]`
//! - output `y`: `[N, O, OH, OW]` with
//!   `OH = (H + 2·pad − KH)/stride + 1` (likewise `OW`).

use crate::linalg::{matmul_transpose_a, matmul_transpose_b, mm_ikj};
use crate::{scratch, Result, Tensor, TensorError};

/// Geometry of a 2-D convolution: stride and symmetric zero padding.
///
/// # Examples
///
/// ```
/// use sf_tensor::Conv2dSpec;
///
/// let same = Conv2dSpec::same(3); // 3×3 kernel, stride 1, pad 1
/// assert_eq!(same.out_size(32, 3), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Stride applied in both spatial dimensions (must be ≥ 1).
    pub stride: usize,
    /// Symmetric zero padding applied in both spatial dimensions.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a spec with the given stride and padding.
    pub fn new(stride: usize, padding: usize) -> Self {
        Conv2dSpec { stride, padding }
    }

    /// The "same" convolution spec for an odd `kernel` size: stride 1 and
    /// padding `kernel / 2`, so spatial dimensions are preserved.
    pub fn same(kernel: usize) -> Self {
        Conv2dSpec {
            stride: 1,
            padding: kernel / 2,
        }
    }

    /// Returns the spec with the given stride (chainable).
    ///
    /// # Examples
    ///
    /// ```
    /// use sf_tensor::Conv2dSpec;
    ///
    /// let spec = Conv2dSpec::default().with_stride(2).with_padding(1);
    /// assert_eq!(spec, Conv2dSpec::new(2, 1));
    /// ```
    pub fn with_stride(mut self, stride: usize) -> Self {
        self.stride = stride;
        self
    }

    /// Returns the spec with the given symmetric padding (chainable).
    pub fn with_padding(mut self, padding: usize) -> Self {
        self.padding = padding;
        self
    }

    /// Output spatial size for an input of size `input` and kernel size
    /// `kernel`, or 0 if the kernel does not fit.
    pub fn out_size(&self, input: usize, kernel: usize) -> usize {
        let padded = input + 2 * self.padding;
        if padded < kernel || self.stride == 0 {
            0
        } else {
            (padded - kernel) / self.stride + 1
        }
    }
}

impl Default for Conv2dSpec {
    fn default() -> Self {
        Conv2dSpec {
            stride: 1,
            padding: 0,
        }
    }
}

fn conv_geometry(
    x: &Tensor,
    w: &Tensor,
    spec: Conv2dSpec,
) -> Result<(usize, usize, usize, usize, usize, usize, usize)> {
    let (n, c, h, ww) = match x.shape() {
        [n, c, h, w] => (*n, *c, *h, *w),
        other => {
            return Err(TensorError::RankMismatch {
                op: "conv2d",
                expected: 4,
                actual: other.to_vec(),
            })
        }
    };
    let (o, cw, kh, kw) = match w.shape() {
        [o, cw, kh, kw] => (*o, *cw, *kh, *kw),
        other => {
            return Err(TensorError::RankMismatch {
                op: "conv2d",
                expected: 4,
                actual: other.to_vec(),
            })
        }
    };
    if c != cw {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: x.shape().to_vec(),
            rhs: w.shape().to_vec(),
        });
    }
    if spec.stride == 0 {
        return Err(TensorError::InvalidGeometry {
            op: "conv2d",
            reason: "stride must be >= 1".to_string(),
        });
    }
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(ww, kw);
    if oh == 0 || ow == 0 {
        return Err(TensorError::InvalidGeometry {
            op: "conv2d",
            reason: format!(
                "kernel {kh}x{kw} with padding {} does not fit input {h}x{ww}",
                spec.padding
            ),
        });
    }
    let _ = (oh, ow);
    Ok((n, c, h, ww, o, kh, kw))
}

/// Unfolds one `CHW` image into the `im2col` matrix `[C·KH·KW, OH·OW]`.
///
/// Each column holds the receptive field of one output pixel; out-of-bounds
/// (padding) taps are zero.
///
/// # Errors
///
/// Returns an error if `image` is not rank 3 or the geometry is invalid.
pub fn im2col(image: &Tensor, kh: usize, kw: usize, spec: Conv2dSpec) -> Result<Tensor> {
    let (c, h, w) = match image.shape() {
        [c, h, w] => (*c, *h, *w),
        other => {
            return Err(TensorError::RankMismatch {
                op: "im2col",
                expected: 3,
                actual: other.to_vec(),
            })
        }
    };
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    if oh == 0 || ow == 0 {
        return Err(TensorError::InvalidGeometry {
            op: "im2col",
            reason: format!("kernel {kh}x{kw} does not fit input {h}x{w}"),
        });
    }
    let cols = oh * ow;
    let mut out = Tensor::zeros(&[c * kh * kw, cols]);
    im2col_into(image.data(), c, h, w, kh, kw, spec, out.data_mut(), cols, 0);
    Ok(out)
}

/// Scatters one `CHW` image into a pre-zeroed `im2col` destination whose
/// rows have length `row_stride`, writing this image's `OH·OW` columns at
/// `col_offset` — so several images can share one wide patch matrix (the
/// batched convolution path). Padding taps are left untouched, which is
/// why the destination must be zeroed.
///
/// Public because the compiled-plan executor in `sf-core` builds its
/// convolution ops from exactly this unfold plus [`matmul_into`]; going
/// through the same kernels is what keeps plan outputs bit-identical to
/// [`conv2d`].
///
/// [`matmul_into`]: crate::matmul_into
#[allow(clippy::too_many_arguments)]
pub fn im2col_into(
    src: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
    dst: &mut [f32],
    row_stride: usize,
    col_offset: usize,
) {
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    let pad = spec.padding as isize;
    let stride = spec.stride;
    for ch in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ch * kh + ki) * kw + kj;
                let dst_row = &mut dst[row * row_stride + col_offset..][..oh * ow];
                for oy in 0..oh {
                    let iy = (oy * stride) as isize + ki as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_base = (ch * h + iy as usize) * w;
                    let dst_base = oy * ow;
                    if stride == 1 {
                        // With unit stride the in-bounds taps of this row
                        // form one contiguous span (ix = ox + kj − pad):
                        // copy it as a block instead of testing every tap.
                        let shift = kj as isize - pad;
                        let ox0 = (-shift).max(0) as usize;
                        let ox1 = ow.min((w as isize - shift).max(0) as usize);
                        if ox0 < ox1 {
                            let ix0 = (ox0 as isize + shift) as usize;
                            dst_row[dst_base + ox0..dst_base + ox1]
                                .copy_from_slice(&src[src_base + ix0..src_base + ix0 + ox1 - ox0]);
                        }
                    } else {
                        for ox in 0..ow {
                            let ix = (ox * stride) as isize + kj as isize - pad;
                            if ix >= 0 && ix < w as isize {
                                dst_row[dst_base + ox] = src[src_base + ix as usize];
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Folds an `im2col` matrix back into a `CHW` image, *summing* overlapping
/// contributions — the adjoint of [`im2col`], used for input gradients.
///
/// # Errors
///
/// Returns an error if `cols` is not rank 2 or its shape is inconsistent
/// with the requested geometry.
pub fn col2im(
    cols: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    let expected = [c * kh * kw, oh * ow];
    if cols.shape() != expected {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            lhs: cols.shape().to_vec(),
            rhs: expected.to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[c, h, w]);
    let src = cols.data();
    let dst = out.data_mut();
    let pad = spec.padding as isize;
    let stride = spec.stride;
    let ncols = oh * ow;
    for ch in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ch * kh + ki) * kw + kj;
                let src_row = &src[row * ncols..(row + 1) * ncols];
                for oy in 0..oh {
                    let iy = (oy * stride) as isize + ki as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dst_base = (ch * h + iy as usize) * w;
                    let src_base = oy * ow;
                    for ox in 0..ow {
                        let ix = (ox * stride) as isize + kj as isize - pad;
                        if ix >= 0 && ix < w as isize {
                            dst[dst_base + ix as usize] += src_row[src_base + ox];
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Batched 2-D convolution forward pass.
///
/// `bias` of shape `[O]` is optional.
///
/// # Errors
///
/// Returns an error on rank or channel mismatches, zero stride, or a kernel
/// that does not fit the padded input.
///
/// # Examples
///
/// ```
/// use sf_tensor::{conv2d, Conv2dSpec, Tensor};
///
/// // 1×1×3×3 input, single 3×3 averaging kernel, "same" padding.
/// let x = Tensor::ones(&[1, 1, 3, 3]);
/// let w = Tensor::full(&[1, 1, 3, 3], 1.0 / 9.0);
/// let y = conv2d(&x, &w, None, Conv2dSpec::same(3))?;
/// assert_eq!(y.shape(), &[1, 1, 3, 3]);
/// // Centre pixel sees the full kernel: exactly 1.0.
/// assert!((y.at(&[0, 0, 1, 1]) - 1.0).abs() < 1e-6);
/// # Ok::<(), sf_tensor::TensorError>(())
/// ```
pub fn conv2d(x: &Tensor, w: &Tensor, bias: Option<&Tensor>, spec: Conv2dSpec) -> Result<Tensor> {
    let (n, c, h, iw, o, kh, kw) = conv_geometry(x, w, spec)?;
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(iw, kw);
    if let Some(b) = bias {
        if b.shape() != [o] {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d bias",
                lhs: b.shape().to_vec(),
                rhs: vec![o],
            });
        }
    }
    let wmat = w.reshape(&[o, c * kh * kw])?;
    let patch = c * kh * kw;
    let cols = oh * ow;
    let plane = o * cols;
    let in_plane = c * h * iw;
    let mut out = Tensor::zeros_pooled(&[n, o, oh, ow]);
    let xd = x.data();
    let add_bias = |dst: &mut [f32]| {
        if let Some(b) = bias {
            for (oc, &bv) in b.data().iter().enumerate() {
                for v in &mut dst[oc * cols..(oc + 1) * cols] {
                    *v += bv;
                }
            }
        }
    };
    if n > 1 && sf_runtime::num_threads() > 1 {
        // Each image owns a disjoint output plane, so the batch splits
        // across the worker pool. The im2col matrix and the matmul run in
        // per-worker scratch, so steady-state calls are allocation-free.
        sf_runtime::parallel_chunks_mut(out.data_mut(), plane, |img, dst| {
            scratch::with_zeroed(patch * cols, |cb| {
                im2col_into(
                    &xd[img * in_plane..(img + 1) * in_plane],
                    c,
                    h,
                    iw,
                    kh,
                    kw,
                    spec,
                    cb,
                    cols,
                    0,
                );
                mm_ikj(wmat.data(), cb, dst, o, patch, cols);
            });
            add_bias(dst);
        });
    } else {
        // Single-threaded path: the same per-image loop the pooled path
        // runs, writing each image's [O, OH·OW] plane straight into the
        // output — no staging matrix, no scatter copy, and the im2col
        // panel stays cache-resident per image. Each output element is
        // the same ascending-tap accumulation as every other path, so
        // results are bit-identical regardless of batch size or threads.
        let od = out.data_mut();
        for img in 0..n {
            let dst = &mut od[img * plane..(img + 1) * plane];
            scratch::with_zeroed(patch * cols, |cb| {
                im2col_into(
                    &xd[img * in_plane..(img + 1) * in_plane],
                    c,
                    h,
                    iw,
                    kh,
                    kw,
                    spec,
                    cb,
                    cols,
                    0,
                );
                mm_ikj(wmat.data(), cb, dst, o, patch, cols);
            });
            add_bias(dst);
        }
    }
    Ok(out)
}

/// Gradients of a 2-D convolution.
///
/// Given upstream `grad_out` of shape `[N, O, OH, OW]`, returns
/// `(grad_input, grad_weight, grad_bias)` with the shapes of `x`, `w`, and
/// `[O]` respectively. `grad_bias` is always returned; callers without a
/// bias simply ignore it.
///
/// # Errors
///
/// Returns an error if shapes are inconsistent with the forward geometry.
pub fn conv2d_backward(
    x: &Tensor,
    w: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
) -> Result<(Tensor, Tensor, Tensor)> {
    let (n, c, h, iw, o, kh, kw) = conv_geometry(x, w, spec)?;
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(iw, kw);
    if grad_out.shape() != [n, o, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward",
            lhs: grad_out.shape().to_vec(),
            rhs: vec![n, o, oh, ow],
        });
    }
    let wmat = w.reshape(&[o, c * kh * kw])?;
    let patch = c * kh * kw;
    let ncols = oh * ow;
    let mut grad_x = Tensor::zeros_pooled(x.shape());
    let mut grad_w_mat = Tensor::zeros(&[o, c * kh * kw]);
    let mut grad_b = Tensor::zeros(&[o]);
    let in_plane = c * h * iw;
    let xd = x.data();
    // Per-image partials are independent, so they run across the worker
    // pool; the weight/bias reduction below stays serial and in image order
    // so gradients are bit-identical to a serial pass. Geometry was
    // validated above, so the per-image ops cannot fail. The im2col matrix
    // is loaned from per-worker scratch and recycled, so the training hot
    // loop does not reallocate it every step.
    let imgs: Vec<usize> = (0..n).collect();
    let partials = sf_runtime::parallel_map(&imgs, |&img| {
        let go = grad_out
            .index_axis0(img)
            .reshape(&[o, oh * ow])
            .expect("geometry validated");
        let mut cols_buf = scratch::take_zeroed(patch * ncols);
        im2col_into(
            &xd[img * in_plane..(img + 1) * in_plane],
            c,
            h,
            iw,
            kh,
            kw,
            spec,
            &mut cols_buf,
            ncols,
            0,
        );
        let cols = Tensor::from_vec(cols_buf, &[patch, ncols]).expect("geometry validated");
        // dW_img = dY · colᵀ
        let gw = matmul_transpose_b(&go, &cols).expect("shapes agree by construction");
        // dCol = Wᵀ · dY, then fold back to image space.
        let grad_cols = matmul_transpose_a(&wmat, &go).expect("shapes agree by construction");
        let gx = col2im(&grad_cols, c, h, iw, kh, kw, spec).expect("geometry validated");
        scratch::recycle(cols.into_vec());
        // dB_img = Σ spatial dY
        let gb: Vec<f32> = (0..o)
            .map(|oc| {
                go.data()[oc * oh * ow..(oc + 1) * oh * ow]
                    .iter()
                    .sum::<f32>()
            })
            .collect();
        (gx, gw, gb)
    });
    for (img, (gx, gw, gb)) in partials.into_iter().enumerate() {
        grad_x.data_mut()[img * in_plane..(img + 1) * in_plane].copy_from_slice(gx.data());
        grad_w_mat.add_assign(&gw);
        for (dst, v) in grad_b.data_mut().iter_mut().zip(&gb) {
            *dst += v;
        }
    }
    let grad_w = grad_w_mat.reshape(w.shape())?;
    Ok((grad_x, grad_w, grad_b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_conv2d(x: &Tensor, w: &Tensor, bias: Option<&Tensor>, spec: Conv2dSpec) -> Tensor {
        let (n, c, h, iw) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (o, kh, kw) = (w.shape()[0], w.shape()[2], w.shape()[3]);
        let oh = spec.out_size(h, kh);
        let ow = spec.out_size(iw, kw);
        Tensor::from_fn(&[n, o, oh, ow], |ix| {
            let (img, oc, oy, ox) = (ix[0], ix[1], ix[2], ix[3]);
            let mut acc = bias.map(|b| b.at(&[oc])).unwrap_or(0.0);
            for ch in 0..c {
                for ki in 0..kh {
                    for kj in 0..kw {
                        let iy = (oy * spec.stride + ki) as isize - spec.padding as isize;
                        let ixx = (ox * spec.stride + kj) as isize - spec.padding as isize;
                        if iy >= 0 && iy < h as isize && ixx >= 0 && ixx < iw as isize {
                            acc += x.at(&[img, ch, iy as usize, ixx as usize])
                                * w.at(&[oc, ch, ki, kj]);
                        }
                    }
                }
            }
            acc
        })
    }

    fn pseudo_random(shape: &[usize], seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        Tensor::from_fn(shape, |_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 1000) as f32 - 500.0) / 250.0
        })
    }

    #[test]
    fn conv_matches_naive_same_padding() {
        let x = pseudo_random(&[2, 3, 5, 7], 1);
        let w = pseudo_random(&[4, 3, 3, 3], 2);
        let b = pseudo_random(&[4], 3);
        let spec = Conv2dSpec::same(3);
        let fast = conv2d(&x, &w, Some(&b), spec).unwrap();
        let slow = naive_conv2d(&x, &w, Some(&b), spec);
        assert!(fast.allclose(&slow, 1e-3));
    }

    #[test]
    fn conv_matches_naive_strided() {
        let x = pseudo_random(&[1, 2, 8, 8], 4);
        let w = pseudo_random(&[3, 2, 3, 3], 5);
        let spec = Conv2dSpec::new(2, 1);
        let fast = conv2d(&x, &w, None, spec).unwrap();
        let slow = naive_conv2d(&x, &w, None, spec);
        assert_eq!(fast.shape(), &[1, 3, 4, 4]);
        assert!(fast.allclose(&slow, 1e-3));
    }

    #[test]
    fn conv_1x1_is_channel_mix() {
        let x = pseudo_random(&[1, 2, 3, 3], 6);
        let w = Tensor::from_vec(vec![1.0, 2.0], &[1, 2, 1, 1]).unwrap();
        let y = conv2d(&x, &w, None, Conv2dSpec::default()).unwrap();
        for iy in 0..3 {
            for ix in 0..3 {
                let expect = x.at(&[0, 0, iy, ix]) + 2.0 * x.at(&[0, 1, iy, ix]);
                assert!((y.at(&[0, 0, iy, ix]) - expect).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn conv_rejects_bad_geometry() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let w = Tensor::zeros(&[1, 1, 5, 5]);
        assert!(conv2d(&x, &w, None, Conv2dSpec::default()).is_err());
        let w2 = Tensor::zeros(&[1, 3, 1, 1]); // channel mismatch
        assert!(conv2d(&x, &w2, None, Conv2dSpec::default()).is_err());
        let w3 = Tensor::zeros(&[1, 1, 1, 1]);
        assert!(conv2d(&x, &w3, None, Conv2dSpec::new(0, 0)).is_err());
        let bad_bias = Tensor::zeros(&[2]);
        assert!(conv2d(&x, &w3, Some(&bad_bias), Conv2dSpec::default()).is_err());
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), y> must equal <x, col2im(y)> — the defining property
        // of an adjoint pair, which is exactly what backward relies on.
        let spec = Conv2dSpec::new(2, 1);
        let x = pseudo_random(&[2, 5, 6], 7);
        let cols = im2col(&x, 3, 3, spec).unwrap();
        let y = pseudo_random(cols.shape(), 8);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let back = col2im(&y, 2, 5, 6, 3, 3, spec).unwrap();
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn conv_backward_finite_difference() {
        let spec = Conv2dSpec::same(3);
        let x = pseudo_random(&[1, 2, 4, 4], 10);
        let w = pseudo_random(&[2, 2, 3, 3], 11);
        let b = pseudo_random(&[2], 12);
        // Loss = sum of outputs → upstream grad of ones.
        let y = conv2d(&x, &w, Some(&b), spec).unwrap();
        let grad_out = Tensor::ones(y.shape());
        let (gx, gw, gb) = conv2d_backward(&x, &w, &grad_out, spec).unwrap();
        let eps = 1e-2f32;
        // Check a scattering of input coordinates.
        for &(i, c, yy, xx) in &[(0, 0, 0, 0), (0, 1, 2, 3), (0, 0, 3, 1)] {
            let mut xp = x.clone();
            xp.set(&[i, c, yy, xx], x.at(&[i, c, yy, xx]) + eps);
            let mut xm = x.clone();
            xm.set(&[i, c, yy, xx], x.at(&[i, c, yy, xx]) - eps);
            let fp = conv2d(&xp, &w, Some(&b), spec).unwrap().sum();
            let fm = conv2d(&xm, &w, Some(&b), spec).unwrap().sum();
            let num = (fp - fm) / (2.0 * eps);
            let ana = gx.at(&[i, c, yy, xx]);
            assert!((num - ana).abs() < 2e-2, "dx mismatch: {num} vs {ana}");
        }
        for &(o, c, ki, kj) in &[(0, 0, 0, 0), (1, 1, 2, 2), (0, 1, 1, 0)] {
            let mut wp = w.clone();
            wp.set(&[o, c, ki, kj], w.at(&[o, c, ki, kj]) + eps);
            let mut wm = w.clone();
            wm.set(&[o, c, ki, kj], w.at(&[o, c, ki, kj]) - eps);
            let fp = conv2d(&x, &wp, Some(&b), spec).unwrap().sum();
            let fm = conv2d(&x, &wm, Some(&b), spec).unwrap().sum();
            let num = (fp - fm) / (2.0 * eps);
            let ana = gw.at(&[o, c, ki, kj]);
            assert!((num - ana).abs() < 2e-2, "dw mismatch: {num} vs {ana}");
        }
        // Bias gradient: d(sum y)/db_o = OH*OW per image.
        for o in 0..2 {
            assert!((gb.at(&[o]) - 16.0).abs() < 1e-3);
        }
    }

    #[test]
    fn out_size_arithmetic() {
        let s = Conv2dSpec::new(2, 1);
        assert_eq!(s.out_size(8, 3), 4);
        assert_eq!(Conv2dSpec::same(5).out_size(10, 5), 10);
        assert_eq!(Conv2dSpec::default().out_size(2, 5), 0);
    }
}
