//! Per-thread reusable scratch buffers for kernel workspaces.
//!
//! The convolution kernels need two large temporaries per call: the
//! `im2col` patch matrix and (on the batched path) a staging buffer for
//! the matmul output. In the serving and training hot loops the same
//! geometry repeats for thousands of calls, so allocating fresh buffers
//! every time turns the allocator into a bottleneck — especially once the
//! calls run on the persistent [`sf_runtime`] worker pool, where every
//! worker hammers the same global allocator.
//!
//! This module keeps a small per-thread free list of `Vec<f32>` buffers.
//! Because the pool's workers are long-lived threads, a worker that ran a
//! convolution once serves every later call with the same geometry from
//! its local list, allocation-free. Buffers are handed out zeroed, so
//! kernels that only write in-bounds taps (like `im2col`, which skips
//! padding positions) behave exactly as they would on a fresh
//! `Tensor::zeros` — results stay bit-identical.
//!
//! The free list matters far beyond the convolution workspaces: a batched
//! forward pass allocates dozens of activation tensors big enough to cross
//! the allocator's mmap threshold, at which point every op pays
//! mmap/munmap plus a page fault per touched page. Handing those buffers
//! back (the autodiff tape recycles its node storage on drop) and re-using
//! them keeps the serving and training hot loops inside memory that is
//! already mapped and cache-warm.
//!
//! The free list is still bounded (a fixed buffer count and byte budget,
//! largest kept): the goal is steady-state reuse in hot loops, not a
//! general allocator.
//!
//! # Examples
//!
//! ```
//! let sum = sf_tensor::scratch::with_zeroed(128, |buf| {
//!     buf[0] = 1.0;
//!     buf.iter().sum::<f32>()
//! });
//! assert_eq!(sum, 1.0);
//! ```

use std::cell::{Cell, RefCell};

/// Maximum buffers kept per thread: enough for every intermediate tensor
/// of one batched forward pass, so a graph dropped after inference can
/// seed the next pass completely.
const MAX_POOLED: usize = 192;

/// Byte budget across all pooled buffers on one thread, so a burst of
/// huge workspaces cannot pin unbounded memory.
const MAX_POOLED_BYTES: usize = 256 << 20;

thread_local! {
    static FREE_LIST: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
    /// Total capacity (in elements) held by `FREE_LIST`, tracked
    /// incrementally so neither take nor recycle re-sums the pool.
    static HELD_ELEMS: Cell<usize> = const { Cell::new(0) };
    /// The int8 kernels' side of the arena: same policy, separate list
    /// (an i8 buffer cannot be retyped as f32 without unsafe games).
    static FREE_LIST_I8: RefCell<Vec<Vec<i8>>> = const { RefCell::new(Vec::new()) };
    static HELD_ELEMS_I8: Cell<usize> = const { Cell::new(0) };
}

/// Pops the smallest pooled buffer with capacity for `len` elements, so
/// one huge buffer is not burned on a tiny request. The free list is
/// kept sorted by capacity, so this is a binary search, not a scan —
/// a hot forward pass performs hundreds of takes per batch.
fn take_best_fit(len: usize) -> Option<Vec<f32>> {
    FREE_LIST.with(|cell| {
        let mut pool = cell.borrow_mut();
        let i = pool.partition_point(|buf| buf.capacity() < len);
        (i < pool.len()).then(|| {
            let buf = pool.remove(i);
            HELD_ELEMS.with(|held| held.set(held.get() - buf.capacity()));
            buf
        })
    })
}

/// Takes a zeroed buffer of exactly `len` elements from this thread's
/// free list, allocating only if no pooled buffer has enough capacity.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    match take_best_fit(len) {
        Some(mut buf) => {
            buf.clear();
            buf.resize(len, 0.0);
            buf
        }
        None => vec![0.0; len],
    }
}

/// Takes an *empty* buffer with capacity for at least `len` elements —
/// for producers that fill it with `extend`/`push` and never read stale
/// contents. Skips the zeroing pass [`take_zeroed`] pays.
pub fn take_spare(len: usize) -> Vec<f32> {
    match take_best_fit(len) {
        Some(mut buf) => {
            buf.clear();
            buf
        }
        None => Vec::with_capacity(len),
    }
}

/// Returns a buffer to this thread's free list for later reuse. Bounded
/// by buffer count and a total byte budget; evicts the smallest pooled
/// buffer when full.
pub fn recycle(buf: Vec<f32>) {
    if buf.capacity() == 0 {
        return;
    }
    FREE_LIST.with(|cell| {
        let mut pool = cell.borrow_mut();
        let cap = buf.capacity();
        let held = HELD_ELEMS.with(Cell::get);
        if (held + cap) * std::mem::size_of::<f32>() > MAX_POOLED_BYTES {
            return;
        }
        // Insert in capacity order so `take_best_fit` can binary-search.
        let i = pool.partition_point(|b| b.capacity() < cap);
        if pool.len() < MAX_POOLED {
            pool.insert(i, buf);
            HELD_ELEMS.with(|h| h.set(held + cap));
        } else if i > 0 {
            // Full: evict the smallest buffer (index 0) for a bigger one.
            let evicted = pool.remove(0);
            pool.insert(i - 1, buf);
            HELD_ELEMS.with(|h| h.set(held + cap - evicted.capacity()));
        }
    });
}

/// Runs `f` with a zeroed scratch slice of `len` elements, recycling the
/// buffer afterwards. The workhorse entry point for kernels.
pub fn with_zeroed<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = take_zeroed(len);
    let result = f(&mut buf);
    recycle(buf);
    result
}

/// Takes a zeroed `i8` buffer of exactly `len` elements from this
/// thread's int8 free list — the quantized-kernel counterpart of
/// [`take_zeroed`].
pub fn take_zeroed_i8(len: usize) -> Vec<i8> {
    let taken = FREE_LIST_I8.with(|cell| {
        let mut pool = cell.borrow_mut();
        let i = pool.partition_point(|buf| buf.capacity() < len);
        (i < pool.len()).then(|| {
            let buf = pool.remove(i);
            HELD_ELEMS_I8.with(|held| held.set(held.get() - buf.capacity()));
            buf
        })
    });
    match taken {
        Some(mut buf) => {
            buf.clear();
            buf.resize(len, 0);
            buf
        }
        None => vec![0; len],
    }
}

/// Returns an `i8` buffer to this thread's int8 free list; bounded by
/// the same buffer count and byte budget as the f32 side.
pub fn recycle_i8(buf: Vec<i8>) {
    if buf.capacity() == 0 {
        return;
    }
    FREE_LIST_I8.with(|cell| {
        let mut pool = cell.borrow_mut();
        let cap = buf.capacity();
        let held = HELD_ELEMS_I8.with(Cell::get);
        if held + cap > MAX_POOLED_BYTES {
            return;
        }
        let i = pool.partition_point(|b| b.capacity() < cap);
        if pool.len() < MAX_POOLED {
            pool.insert(i, buf);
            HELD_ELEMS_I8.with(|h| h.set(held + cap));
        } else if i > 0 {
            let evicted = pool.remove(0);
            pool.insert(i - 1, buf);
            HELD_ELEMS_I8.with(|h| h.set(held + cap - evicted.capacity()));
        }
    });
}

/// Runs `f` with a zeroed `i8` scratch slice of `len` elements, recycling
/// the buffer afterwards — the int8 kernels' entry point.
pub fn with_zeroed_i8<R>(len: usize, f: impl FnOnce(&mut [i8]) -> R) -> R {
    let mut buf = take_zeroed_i8(len);
    let result = f(&mut buf);
    recycle_i8(buf);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_come_back_zeroed() {
        with_zeroed(64, |buf| {
            assert_eq!(buf.len(), 64);
            buf.fill(7.5);
        });
        // The recycled buffer must be scrubbed on the next loan.
        with_zeroed(64, |buf| {
            assert!(buf.iter().all(|&v| v == 0.0));
        });
    }

    #[test]
    fn reuse_preserves_capacity_across_sizes() {
        let big = take_zeroed(1024);
        let cap = big.capacity();
        recycle(big);
        // A smaller request reuses the big buffer rather than allocating.
        let small = take_zeroed(16);
        assert!(small.capacity() >= 16);
        recycle(small);
        // And a same-size request gets the original capacity back.
        let again = take_zeroed(1024);
        assert!(again.capacity() >= cap.min(1024));
    }

    #[test]
    fn free_list_is_bounded() {
        let bufs: Vec<Vec<f32>> = (0..2 * MAX_POOLED).map(|i| take_zeroed(8 + i)).collect();
        for b in bufs {
            recycle(b);
        }
        FREE_LIST.with(|cell| assert!(cell.borrow().len() <= MAX_POOLED));
    }

    #[test]
    fn spare_buffers_are_empty_with_capacity() {
        let mut buf = take_spare(256);
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 256);
        buf.extend(std::iter::repeat_n(3.0, 256));
        recycle(buf);
        let again = take_spare(256);
        assert!(again.is_empty(), "reused buffers must come back cleared");
        assert!(again.capacity() >= 256);
    }

    #[test]
    fn i8_buffers_come_back_zeroed_and_reused() {
        with_zeroed_i8(64, |buf| {
            assert_eq!(buf.len(), 64);
            buf.fill(-5);
        });
        with_zeroed_i8(64, |buf| {
            assert!(buf.iter().all(|&v| v == 0));
        });
        let big = take_zeroed_i8(2048);
        let cap = big.capacity();
        recycle_i8(big);
        let again = take_zeroed_i8(2048);
        assert!(again.capacity() >= cap.min(2048));
    }

    #[test]
    fn nested_loans_are_distinct_buffers() {
        with_zeroed(32, |outer| {
            outer.fill(1.0);
            with_zeroed(32, |inner| {
                assert!(inner.iter().all(|&v| v == 0.0));
            });
            assert!(outer.iter().all(|&v| v == 1.0));
        });
    }
}
