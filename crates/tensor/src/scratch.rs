//! Per-thread reusable scratch buffers for kernel workspaces.
//!
//! The convolution kernels need two large temporaries per call: the
//! `im2col` patch matrix and (on the batched path) a staging buffer for
//! the matmul output. In the serving and training hot loops the same
//! geometry repeats for thousands of calls, so allocating fresh buffers
//! every time turns the allocator into a bottleneck — especially once the
//! calls run on the persistent [`sf_runtime`] worker pool, where every
//! worker hammers the same global allocator.
//!
//! This module keeps a small per-thread free list of `Vec<f32>` buffers.
//! Because the pool's workers are long-lived threads, a worker that ran a
//! convolution once serves every later call with the same geometry from
//! its local list, allocation-free. Buffers are handed out zeroed, so
//! kernels that only write in-bounds taps (like `im2col`, which skips
//! padding positions) behave exactly as they would on a fresh
//! `Tensor::zeros` — results stay bit-identical.
//!
//! The free list matters far beyond the convolution workspaces: a batched
//! forward pass allocates dozens of activation tensors big enough to cross
//! the allocator's mmap threshold, at which point every op pays
//! mmap/munmap plus a page fault per touched page. Handing those buffers
//! back (the autodiff tape recycles its node storage on drop) and re-using
//! them keeps the serving and training hot loops inside memory that is
//! already mapped and cache-warm.
//!
//! The free list is still bounded (a fixed buffer count and byte budget,
//! largest kept): the goal is steady-state reuse in hot loops, not a
//! general allocator.
//!
//! # Examples
//!
//! ```
//! let sum = sf_tensor::scratch::with_zeroed(128, |buf| {
//!     buf[0] = 1.0;
//!     buf.iter().sum::<f32>()
//! });
//! assert_eq!(sum, 1.0);
//! ```

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Maximum buffers kept per thread: enough for every intermediate tensor
/// of one batched forward pass, so a graph dropped after inference can
/// seed the next pass completely.
const MAX_POOLED: usize = 192;

/// Byte budget across all pooled buffers on one thread, so a burst of
/// huge workspaces cannot pin unbounded memory.
const MAX_POOLED_BYTES: usize = 256 << 20;

thread_local! {
    static FREE_LIST: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
    /// Total capacity (in elements) held by `FREE_LIST`, tracked
    /// incrementally so neither take nor recycle re-sums the pool.
    static HELD_ELEMS: Cell<usize> = const { Cell::new(0) };
    /// The int8 kernels' side of the arena: same policy, separate list
    /// (an i8 buffer cannot be retyped as f32 without unsafe games).
    static FREE_LIST_I8: RefCell<Vec<Vec<i8>>> = const { RefCell::new(Vec::new()) };
    static HELD_ELEMS_I8: Cell<usize> = const { Cell::new(0) };
    /// High-water mark of this thread's pooled bytes (f32 + i8 lists).
    static PEAK_BYTES: Cell<usize> = const { Cell::new(0) };
}

// Process-wide mirrors of the per-thread counters, maintained with
// relaxed atomics on every take/recycle. They let a serving stack report
// one arena high-water mark across all worker threads — the soak
// harness's bounded-memory probe. Relaxed is enough: the values are
// monitoring data, never used for synchronisation.
static GLOBAL_HELD_BYTES: AtomicUsize = AtomicUsize::new(0);
static GLOBAL_PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);
static GLOBAL_BUFFERS: AtomicUsize = AtomicUsize::new(0);

/// Arena residency counters — what the free lists currently *hold*, not
/// what kernels have loaned out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Bytes currently held by the free lists.
    pub held_bytes: usize,
    /// Number of pooled buffers.
    pub buffers: usize,
    /// High-water mark of `held_bytes` since startup or the last
    /// [`reset_peak`].
    pub peak_bytes: usize,
}

fn thread_held_bytes() -> usize {
    HELD_ELEMS.with(Cell::get) * std::mem::size_of::<f32>() + HELD_ELEMS_I8.with(Cell::get)
}

/// Records `bytes` entering a free list (one buffer kept).
fn pool_grew(bytes: usize) {
    EXIT_GUARD.with(|_| {});
    GLOBAL_BUFFERS.fetch_add(1, Ordering::Relaxed);
    let now = GLOBAL_HELD_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    GLOBAL_PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
    let held = thread_held_bytes();
    PEAK_BYTES.with(|p| p.set(p.get().max(held)));
}

/// Records `bytes` leaving a free list (one buffer taken or evicted).
fn pool_shrank(bytes: usize) {
    GLOBAL_BUFFERS.fetch_sub(1, Ordering::Relaxed);
    GLOBAL_HELD_BYTES.fetch_sub(bytes, Ordering::Relaxed);
}

thread_local! {
    /// Settles this thread's share of the global counters when the
    /// thread exits — otherwise buffers freed by TLS teardown would stay
    /// counted as held forever. Touched once per recycle so the
    /// destructor is registered on every pooling thread.
    static EXIT_GUARD: ExitGuard = const { ExitGuard };
}

struct ExitGuard;

impl Drop for ExitGuard {
    fn drop(&mut self) {
        // TLS destructor order is unspecified: the lists may already be
        // gone, in which case their own teardown freed the memory and we
        // saturate rather than underflow.
        let bytes = HELD_ELEMS.try_with(Cell::get).unwrap_or(0) * std::mem::size_of::<f32>()
            + HELD_ELEMS_I8.try_with(Cell::get).unwrap_or(0);
        let buffers = FREE_LIST.try_with(|c| c.borrow().len()).unwrap_or(0)
            + FREE_LIST_I8.try_with(|c| c.borrow().len()).unwrap_or(0);
        let _ = GLOBAL_HELD_BYTES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(bytes))
        });
        let _ = GLOBAL_BUFFERS.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(buffers))
        });
    }
}

/// This thread's arena counters: current residency plus the per-thread
/// high-water mark (f32 and i8 lists combined).
pub fn stats() -> ScratchStats {
    ScratchStats {
        held_bytes: thread_held_bytes(),
        buffers: FREE_LIST.with(|c| c.borrow().len()) + FREE_LIST_I8.with(|c| c.borrow().len()),
        peak_bytes: PEAK_BYTES.with(Cell::get),
    }
}

/// Resets this thread's high-water mark to the current residency.
pub fn reset_peak() {
    PEAK_BYTES.with(|p| p.set(thread_held_bytes()));
}

/// Process-wide arena counters aggregated over every thread — the
/// bounded-memory probe the soak harness asserts on. `peak_bytes` is
/// monotone within a process (no global reset: a concurrent reset would
/// race with worker threads); a plateauing peak is the signal that
/// steady-state serving has stopped growing the arena.
pub fn pool_stats() -> ScratchStats {
    ScratchStats {
        held_bytes: GLOBAL_HELD_BYTES.load(Ordering::Relaxed),
        buffers: GLOBAL_BUFFERS.load(Ordering::Relaxed),
        peak_bytes: GLOBAL_PEAK_BYTES.load(Ordering::Relaxed),
    }
}

/// Pops the smallest pooled buffer with capacity for `len` elements, so
/// one huge buffer is not burned on a tiny request. The free list is
/// kept sorted by capacity, so this is a binary search, not a scan —
/// a hot forward pass performs hundreds of takes per batch.
fn take_best_fit(len: usize) -> Option<Vec<f32>> {
    FREE_LIST.with(|cell| {
        let mut pool = cell.borrow_mut();
        let i = pool.partition_point(|buf| buf.capacity() < len);
        (i < pool.len()).then(|| {
            let buf = pool.remove(i);
            HELD_ELEMS.with(|held| held.set(held.get() - buf.capacity()));
            pool_shrank(buf.capacity() * std::mem::size_of::<f32>());
            buf
        })
    })
}

/// Takes a zeroed buffer of exactly `len` elements from this thread's
/// free list, allocating only if no pooled buffer has enough capacity.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    match take_best_fit(len) {
        Some(mut buf) => {
            buf.clear();
            buf.resize(len, 0.0);
            buf
        }
        None => vec![0.0; len],
    }
}

/// Takes an *empty* buffer with capacity for at least `len` elements —
/// for producers that fill it with `extend`/`push` and never read stale
/// contents. Skips the zeroing pass [`take_zeroed`] pays.
pub fn take_spare(len: usize) -> Vec<f32> {
    match take_best_fit(len) {
        Some(mut buf) => {
            buf.clear();
            buf
        }
        None => Vec::with_capacity(len),
    }
}

/// Returns a buffer to this thread's free list for later reuse. Bounded
/// by buffer count and a total byte budget; evicts the smallest pooled
/// buffer when full.
pub fn recycle(buf: Vec<f32>) {
    if buf.capacity() == 0 {
        return;
    }
    FREE_LIST.with(|cell| {
        let mut pool = cell.borrow_mut();
        let cap = buf.capacity();
        let held = HELD_ELEMS.with(Cell::get);
        if (held + cap) * std::mem::size_of::<f32>() > MAX_POOLED_BYTES {
            return;
        }
        // Insert in capacity order so `take_best_fit` can binary-search.
        let i = pool.partition_point(|b| b.capacity() < cap);
        if pool.len() < MAX_POOLED {
            pool.insert(i, buf);
            HELD_ELEMS.with(|h| h.set(held + cap));
            pool_grew(cap * std::mem::size_of::<f32>());
        } else if i > 0 {
            // Full: evict the smallest buffer (index 0) for a bigger one.
            let evicted = pool.remove(0);
            pool.insert(i - 1, buf);
            HELD_ELEMS.with(|h| h.set(held + cap - evicted.capacity()));
            pool_grew(cap * std::mem::size_of::<f32>());
            pool_shrank(evicted.capacity() * std::mem::size_of::<f32>());
        }
    });
}

/// Runs `f` with a zeroed scratch slice of `len` elements, recycling the
/// buffer afterwards. The workhorse entry point for kernels.
pub fn with_zeroed<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = take_zeroed(len);
    let result = f(&mut buf);
    recycle(buf);
    result
}

/// Takes a zeroed `i8` buffer of exactly `len` elements from this
/// thread's int8 free list — the quantized-kernel counterpart of
/// [`take_zeroed`].
pub fn take_zeroed_i8(len: usize) -> Vec<i8> {
    let taken = FREE_LIST_I8.with(|cell| {
        let mut pool = cell.borrow_mut();
        let i = pool.partition_point(|buf| buf.capacity() < len);
        (i < pool.len()).then(|| {
            let buf = pool.remove(i);
            HELD_ELEMS_I8.with(|held| held.set(held.get() - buf.capacity()));
            pool_shrank(buf.capacity());
            buf
        })
    });
    match taken {
        Some(mut buf) => {
            buf.clear();
            buf.resize(len, 0);
            buf
        }
        None => vec![0; len],
    }
}

/// Returns an `i8` buffer to this thread's int8 free list; bounded by
/// the same buffer count and byte budget as the f32 side.
pub fn recycle_i8(buf: Vec<i8>) {
    if buf.capacity() == 0 {
        return;
    }
    FREE_LIST_I8.with(|cell| {
        let mut pool = cell.borrow_mut();
        let cap = buf.capacity();
        let held = HELD_ELEMS_I8.with(Cell::get);
        if held + cap > MAX_POOLED_BYTES {
            return;
        }
        let i = pool.partition_point(|b| b.capacity() < cap);
        if pool.len() < MAX_POOLED {
            pool.insert(i, buf);
            HELD_ELEMS_I8.with(|h| h.set(held + cap));
            pool_grew(cap);
        } else if i > 0 {
            let evicted = pool.remove(0);
            pool.insert(i - 1, buf);
            HELD_ELEMS_I8.with(|h| h.set(held + cap - evicted.capacity()));
            pool_grew(cap);
            pool_shrank(evicted.capacity());
        }
    });
}

/// Runs `f` with a zeroed `i8` scratch slice of `len` elements, recycling
/// the buffer afterwards — the int8 kernels' entry point.
pub fn with_zeroed_i8<R>(len: usize, f: impl FnOnce(&mut [i8]) -> R) -> R {
    let mut buf = take_zeroed_i8(len);
    let result = f(&mut buf);
    recycle_i8(buf);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_come_back_zeroed() {
        with_zeroed(64, |buf| {
            assert_eq!(buf.len(), 64);
            buf.fill(7.5);
        });
        // The recycled buffer must be scrubbed on the next loan.
        with_zeroed(64, |buf| {
            assert!(buf.iter().all(|&v| v == 0.0));
        });
    }

    #[test]
    fn reuse_preserves_capacity_across_sizes() {
        let big = take_zeroed(1024);
        let cap = big.capacity();
        recycle(big);
        // A smaller request reuses the big buffer rather than allocating.
        let small = take_zeroed(16);
        assert!(small.capacity() >= 16);
        recycle(small);
        // And a same-size request gets the original capacity back.
        let again = take_zeroed(1024);
        assert!(again.capacity() >= cap.min(1024));
    }

    #[test]
    fn free_list_is_bounded() {
        let bufs: Vec<Vec<f32>> = (0..2 * MAX_POOLED).map(|i| take_zeroed(8 + i)).collect();
        for b in bufs {
            recycle(b);
        }
        FREE_LIST.with(|cell| assert!(cell.borrow().len() <= MAX_POOLED));
    }

    #[test]
    fn spare_buffers_are_empty_with_capacity() {
        let mut buf = take_spare(256);
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 256);
        buf.extend(std::iter::repeat_n(3.0, 256));
        recycle(buf);
        let again = take_spare(256);
        assert!(again.is_empty(), "reused buffers must come back cleared");
        assert!(again.capacity() >= 256);
    }

    #[test]
    fn i8_buffers_come_back_zeroed_and_reused() {
        with_zeroed_i8(64, |buf| {
            assert_eq!(buf.len(), 64);
            buf.fill(-5);
        });
        with_zeroed_i8(64, |buf| {
            assert!(buf.iter().all(|&v| v == 0));
        });
        let big = take_zeroed_i8(2048);
        let cap = big.capacity();
        recycle_i8(big);
        let again = take_zeroed_i8(2048);
        assert!(again.capacity() >= cap.min(2048));
    }

    #[test]
    fn stats_track_residency_and_peak() {
        // Establish a known floor, then grow the pool and watch the
        // counters move. Other tests on this thread may have pooled
        // buffers already, so assert deltas, not absolutes.
        reset_peak();
        let before = stats();
        assert_eq!(before.peak_bytes, before.held_bytes);
        let buf = take_zeroed(4096);
        let cap_bytes = buf.capacity() * std::mem::size_of::<f32>();
        recycle(buf);
        let after = stats();
        assert!(after.held_bytes >= before.held_bytes.min(after.held_bytes));
        assert!(
            after.peak_bytes >= cap_bytes.min(after.held_bytes),
            "peak {} must register the recycled buffer",
            after.peak_bytes
        );
        assert!(after.buffers >= 1);
        // Taking the buffer back lowers residency but never the peak.
        let again = take_zeroed(4096);
        let drained = stats();
        assert!(drained.held_bytes < after.held_bytes);
        assert_eq!(drained.peak_bytes, after.peak_bytes);
        recycle(again);
        // reset_peak collapses the mark onto current residency.
        reset_peak();
        let reset = stats();
        assert_eq!(reset.peak_bytes, reset.held_bytes);
    }

    #[test]
    fn pool_stats_see_every_thread() {
        let buf = take_zeroed(1 << 16);
        recycle(buf);
        std::thread::spawn(|| {
            let buf = take_zeroed(1 << 16);
            recycle(buf);
        })
        .join()
        .unwrap();
        let pool = pool_stats();
        // Both this thread's and the worker's recycles registered; the
        // worker's buffer is still held (its thread never took it back).
        assert!(pool.peak_bytes >= (1 << 16) * std::mem::size_of::<f32>());
        assert!(pool.peak_bytes >= pool.held_bytes || pool.buffers > 0);
    }

    #[test]
    fn nested_loans_are_distinct_buffers() {
        with_zeroed(32, |outer| {
            outer.fill(1.0);
            with_zeroed(32, |inner| {
                assert!(inner.iter().all(|&v| v == 0.0));
            });
            assert!(outer.iter().all(|&v| v == 1.0));
        });
    }
}
