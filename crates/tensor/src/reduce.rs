//! Axis reductions and broadcast-gradient helpers.

use crate::shape::strides_for;
use crate::{Result, Tensor, TensorError};

/// A validated axis index into a tensor's shape.
///
/// The newtype documents intent at call sites (`Axis(1)` reads as "the
/// channel axis" in NCHW code) and is validated by the reduction
/// functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Axis(pub usize);

/// How a loss or metric folds per-element values into a scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Reduction {
    /// Arithmetic mean over all elements (the default for losses).
    #[default]
    Mean,
    /// Plain sum over all elements.
    Sum,
}

impl Reduction {
    /// Applies the reduction to a tensor, yielding a scalar value.
    pub fn apply(self, t: &Tensor) -> f32 {
        match self {
            Reduction::Mean => t.mean(),
            Reduction::Sum => t.sum(),
        }
    }

    /// The factor by which a per-element gradient must be scaled.
    pub fn grad_scale(self, numel: usize) -> f32 {
        match self {
            Reduction::Mean => {
                if numel == 0 {
                    0.0
                } else {
                    1.0 / numel as f32
                }
            }
            Reduction::Sum => 1.0,
        }
    }
}

impl Tensor {
    /// Sums along `axis`, keeping that axis with size 1 when
    /// `keepdim` is true.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if the axis exceeds the
    /// tensor's rank.
    pub fn sum_axis(&self, axis: Axis, keepdim: bool) -> Result<Tensor> {
        let rank = self.rank();
        if axis.0 >= rank {
            return Err(TensorError::AxisOutOfRange { axis: axis.0, rank });
        }
        let outer: usize = self.shape()[..axis.0].iter().product();
        let mid = self.shape()[axis.0];
        let inner: usize = self.shape()[axis.0 + 1..].iter().product();
        let mut out_shape: Vec<usize> = self.shape().to_vec();
        if keepdim {
            out_shape[axis.0] = 1;
        } else {
            out_shape.remove(axis.0);
        }
        let mut out = Tensor::zeros(&out_shape);
        let src = self.data();
        let dst = out.data_mut();
        for o in 0..outer {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    dst[obase + i] += src[base + i];
                }
            }
        }
        Ok(out)
    }

    /// Arithmetic mean along `axis`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::sum_axis`].
    pub fn mean_axis(&self, axis: Axis, keepdim: bool) -> Result<Tensor> {
        let n = self
            .shape()
            .get(axis.0)
            .copied()
            .ok_or(TensorError::AxisOutOfRange {
                axis: axis.0,
                rank: self.rank(),
            })?;
        Ok(self.sum_axis(axis, keepdim)?.scale(1.0 / n.max(1) as f32))
    }

    /// Reduces this tensor (by summation) down to `target` — the adjoint of
    /// broadcasting `target`-shaped data up to `self.shape()`. Used to fold
    /// gradients of broadcast operands back to their original shapes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `target` does not
    /// broadcast to `self.shape()`.
    pub fn sum_to_shape(&self, target: &[usize]) -> Result<Tensor> {
        if self.shape() == target {
            return Ok(self.clone());
        }
        let src_shape = self.shape().to_vec();
        let rank = src_shape.len();
        if target.len() > rank {
            return Err(TensorError::ShapeMismatch {
                op: "sum_to_shape",
                lhs: src_shape,
                rhs: target.to_vec(),
            });
        }
        // Right-align target against the source shape; every mismatched
        // axis must be 1 in the target.
        let offset = rank - target.len();
        for (i, &t) in target.iter().enumerate() {
            let s = src_shape[offset + i];
            if t != s && t != 1 {
                return Err(TensorError::ShapeMismatch {
                    op: "sum_to_shape",
                    lhs: src_shape,
                    rhs: target.to_vec(),
                });
            }
        }
        let out_numel: usize = target.iter().product();
        let mut out = Tensor::zeros(target);
        // Strides of the output, aligned to the source rank with stride 0
        // on summed axes.
        let tstrides = strides_for(target);
        let mut aligned = vec![0usize; rank];
        for (i, &t) in target.iter().enumerate() {
            aligned[offset + i] = if t == 1 { 0 } else { tstrides[i] };
        }
        let dst = out.data_mut();
        let mut index = vec![0usize; rank];
        for &v in self.data() {
            let oi: usize = index.iter().zip(&aligned).map(|(&i, &s)| i * s).sum();
            dst[oi] += v;
            for d in (0..rank).rev() {
                index[d] += 1;
                if index[d] < src_shape[d] {
                    break;
                }
                index[d] = 0;
            }
        }
        debug_assert!(out_numel == out.numel());
        Ok(out)
    }

    /// Per-channel mean and (biased) variance of an `NCHW` batch, reduced
    /// over the batch and spatial axes — the statistics batch
    /// normalisation needs.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 4.
    pub fn channel_mean_var(&self) -> Result<(Tensor, Tensor)> {
        let (n, c, h, w) = match self.shape() {
            [n, c, h, w] => (*n, *c, *h, *w),
            other => {
                return Err(TensorError::RankMismatch {
                    op: "channel_mean_var",
                    expected: 4,
                    actual: other.to_vec(),
                })
            }
        };
        let count = (n * h * w).max(1) as f64;
        let mut mean = Tensor::zeros(&[c]);
        let mut var = Tensor::zeros(&[c]);
        let src = self.data();
        for ch in 0..c {
            let mut sum = 0.0f64;
            let mut sum_sq = 0.0f64;
            for img in 0..n {
                let base = (img * c + ch) * h * w;
                for &v in &src[base..base + h * w] {
                    sum += v as f64;
                    sum_sq += (v as f64) * (v as f64);
                }
            }
            let m = sum / count;
            mean.data_mut()[ch] = m as f32;
            var.data_mut()[ch] = (sum_sq / count - m * m).max(0.0) as f32;
        }
        Ok((mean, var))
    }

    /// Index of the maximum element in flat (row-major) order; `None` for
    /// empty tensors.
    pub fn argmax(&self) -> Option<usize> {
        self.data()
            .iter()
            .enumerate()
            .fold(None, |best, (i, &v)| match best {
                Some((_, bv)) if bv >= v => best,
                _ => Some((i, v)),
            })
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_axis_middle() {
        let t = Tensor::from_fn(&[2, 3, 2], |ix| (ix[0] * 100 + ix[1] * 10 + ix[2]) as f32);
        let s = t.sum_axis(Axis(1), false).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.at(&[0, 0]), 0.0 + 10.0 + 20.0);
        assert_eq!(s.at(&[1, 1]), 101.0 + 111.0 + 121.0);
        let keep = t.sum_axis(Axis(1), true).unwrap();
        assert_eq!(keep.shape(), &[2, 1, 2]);
    }

    #[test]
    fn mean_axis_divides() {
        let t = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], &[2, 2]).unwrap();
        let m = t.mean_axis(Axis(0), false).unwrap();
        assert_eq!(m.data(), &[4.0, 6.0]);
    }

    #[test]
    fn axis_out_of_range() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(t.sum_axis(Axis(2), false).is_err());
        assert!(t.mean_axis(Axis(5), true).is_err());
    }

    #[test]
    fn sum_to_shape_row_vector() {
        let t = Tensor::from_fn(&[3, 4], |ix| ix[0] as f32);
        let s = t.sum_to_shape(&[4]).unwrap();
        assert_eq!(s.data(), &[3.0, 3.0, 3.0, 3.0]);
        let s2 = t.sum_to_shape(&[3, 1]).unwrap();
        assert_eq!(s2.data(), &[0.0, 4.0, 8.0]);
    }

    #[test]
    fn sum_to_shape_identity_and_scalar() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        assert_eq!(t.sum_to_shape(&[3]).unwrap().data(), t.data());
        let s = t.sum_to_shape(&[]).unwrap();
        assert_eq!(s.at(&[]), 6.0);
    }

    #[test]
    fn sum_to_shape_rejects_non_broadcast() {
        let t = Tensor::zeros(&[3, 4]);
        assert!(t.sum_to_shape(&[2]).is_err());
        assert!(t.sum_to_shape(&[3, 4, 1]).is_err());
    }

    #[test]
    fn channel_stats() {
        // Channel 0 constant 2.0 → var 0; channel 1 alternating ±1 → mean 0 var 1.
        let t = Tensor::from_fn(&[2, 2, 2, 2], |ix| {
            if ix[1] == 0 {
                2.0
            } else if (ix[2] + ix[3]) % 2 == 0 {
                1.0
            } else {
                -1.0
            }
        });
        let (mean, var) = t.channel_mean_var().unwrap();
        assert!((mean.at(&[0]) - 2.0).abs() < 1e-6);
        assert!(var.at(&[0]).abs() < 1e-6);
        assert!(mean.at(&[1]).abs() < 1e-6);
        assert!((var.at(&[1]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn reduction_enum() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 6.0], &[4]).unwrap();
        assert_eq!(Reduction::Sum.apply(&t), 12.0);
        assert_eq!(Reduction::Mean.apply(&t), 3.0);
        assert_eq!(Reduction::Sum.grad_scale(10), 1.0);
        assert_eq!(Reduction::Mean.grad_scale(4), 0.25);
        assert_eq!(Reduction::default(), Reduction::Mean);
    }

    #[test]
    fn argmax_basic() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 3.0], &[3]).unwrap();
        assert_eq!(t.argmax(), Some(1));
        assert_eq!(Tensor::zeros(&[0]).argmax(), None);
    }
}
