//! Dense matrix multiplication kernels.
//!
//! These power the `im2col` convolution path, so they are written with a
//! cache-friendly `i-k-j` loop order and a row split across the persistent
//! [`sf_runtime`] worker pool for large problems. They operate on rank-2
//! [`Tensor`]s.

use crate::{Result, Tensor, TensorError};

/// Minimum number of output elements before the kernels split work across
/// threads. Small problems are faster single-threaded.
const PARALLEL_THRESHOLD: usize = 64 * 1024;

fn check_rank2(op: &'static str, t: &Tensor) -> Result<(usize, usize)> {
    match t.shape() {
        [r, c] => Ok((*r, *c)),
        other => Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: other.to_vec(),
        }),
    }
}

/// `C = A · B` for row-major matrices `A: [m, k]`, `B: [k, n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 2,
/// or [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use sf_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let id = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// assert_eq!(matmul(&a, &id)?.data(), a.data());
/// # Ok::<(), sf_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_rank2("matmul", a)?;
    let (k2, n) = check_rank2("matmul", b)?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    mm_ikj(a.data(), b.data(), out.data_mut(), m, k, n);
    Ok(out)
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` without materialising the
/// transpose.
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = check_rank2("matmul_transpose_a", a)?;
    let (k2, n) = check_rank2("matmul_transpose_a", b)?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_transpose_a",
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd, od) = (a.data(), b.data(), out.data_mut());
    // out[i][j] += a[p][i] * b[p][j]; p-outer keeps both reads sequential.
    for p in 0..k {
        let brow = &bd[p * n..(p + 1) * n];
        for i in 0..m {
            let av = ad[p * m + i];
            if av == 0.0 {
                continue;
            }
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Ok(out)
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` without materialising the
/// transpose.
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_rank2("matmul_transpose_b", a)?;
    let (n, k2) = check_rank2("matmul_transpose_b", b)?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_transpose_b",
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd, od) = (a.data(), b.data(), out.data_mut());
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut od[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
    Ok(out)
}

/// The shared `i-k-j` inner kernel: `out[m,n] += a[m,k] * b[k,n]`.
///
/// Splits rows of `a` across threads when the output is large enough.
/// Exposed to the convolution module so the batched forward path can
/// multiply straight into a borrowed output slice without an extra
/// allocation or copy. `out` must be zeroed (the kernel accumulates).
pub(crate) fn mm_ikj(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let threads = sf_runtime::num_threads();
    if m * n < PARALLEL_THRESHOLD || threads <= 1 || m < 2 {
        mm_ikj_rows(a, b, out, 0..m, k, n);
        return;
    }
    // Chunk boundaries depend only on (m, n, threads), and each row is
    // computed by the identical serial kernel, so the parallel result is
    // bit-identical to the serial one.
    let chunk = m.div_ceil(threads);
    sf_runtime::parallel_chunks_mut(out, chunk * n, |ci, rows_out| {
        let row0 = ci * chunk;
        let rows = rows_out.len() / n;
        mm_ikj_rows(a, b, rows_out, row0..row0 + rows, k, n);
    });
}

/// `out[m,n] += a[m,k] · b[k,n]` on raw row-major slices. `out` must be
/// zeroed (the kernel accumulates into it).
///
/// This is the public face of the internal `i-k-j` kernel that powers
/// [`matmul`] and the `im2col` convolution path: the compiled-plan
/// executor in `sf-core` multiplies straight into its statically
/// scheduled slot buffers through it, so plan results stay bit-identical
/// to the graph path's convolutions.
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`k`/`n` extent implies.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert!(a.len() >= m * k && b.len() >= k * n && out.len() >= m * n);
    mm_ikj(a, b, out, m, k, n);
}

/// f32 elements of `b` streamed per column block (256 KiB): big enough
/// that loop overheads amortise, small enough that the panel stays
/// cache-resident across the row loop.
const MM_PANEL_ELEMS: usize = 1 << 16;

fn mm_ikj_rows(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    rows: std::ops::Range<usize>,
    k: usize,
    n: usize,
) {
    // Column-tile the traversal: with wide merged-batch columns
    // (n = batch·H·W) an untiled pass re-streams the whole k×n panel of
    // `b` from memory once per output row. Tiling only reorders which
    // (i, j) cells are visited when — each cell still accumulates over p
    // in ascending order, so results are bit-identical to the untiled
    // kernel (and `n <= block` degenerates to exactly that kernel).
    let block = (MM_PANEL_ELEMS / k.max(1)).max(256).min(n.max(1));
    let base = rows.start;
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + block).min(n);
        for i in rows.clone() {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[(i - base) * n + j0..(i - base) * n + j1];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n + j0..p * n + j1];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        j0 = j1;
    }
}

/// Returns the rank-2 transpose of `t`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `t` is not rank 2.
pub fn transpose2d(t: &Tensor) -> Result<Tensor> {
    let (r, c) = check_rank2("transpose2d", t)?;
    let mut out = Tensor::zeros(&[c, r]);
    let (src, dst) = (t.data(), out.data_mut());
    for i in 0..r {
        for j in 0..c {
            dst[j * r + i] = src[i * c + j];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        Tensor::from_fn(&[m, n], |ix| {
            (0..k).map(|p| a.at(&[ix[0], p]) * b.at(&[p, ix[1]])).sum()
        })
    }

    fn random_matrix(r: usize, c: usize, seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        Tensor::from_fn(&[r, c], |_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2000) as f32 - 1000.0) / 500.0
        })
    }

    #[test]
    fn matmul_matches_naive() {
        let a = random_matrix(7, 5, 1);
        let b = random_matrix(5, 9, 2);
        let fast = matmul(&a, &b).unwrap();
        let slow = naive_matmul(&a, &b);
        assert!(fast.allclose(&slow, 1e-4));
    }

    #[test]
    fn matmul_identity() {
        let a = random_matrix(4, 4, 3);
        let id = Tensor::from_fn(&[4, 4], |ix| if ix[0] == ix[1] { 1.0 } else { 0.0 });
        assert!(matmul(&a, &id).unwrap().allclose(&a, 1e-6));
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&Tensor::zeros(&[6]), &b).is_err());
    }

    #[test]
    fn transpose_a_matches_explicit() {
        let a = random_matrix(6, 4, 4);
        let b = random_matrix(6, 5, 5);
        let at = transpose2d(&a).unwrap();
        let expect = matmul(&at, &b).unwrap();
        let got = matmul_transpose_a(&a, &b).unwrap();
        assert!(got.allclose(&expect, 1e-4));
    }

    #[test]
    fn transpose_b_matches_explicit() {
        let a = random_matrix(3, 7, 6);
        let b = random_matrix(5, 7, 7);
        let bt = transpose2d(&b).unwrap();
        let expect = matmul(&a, &bt).unwrap();
        let got = matmul_transpose_b(&a, &b).unwrap();
        assert!(got.allclose(&expect, 1e-4));
    }

    #[test]
    fn large_matmul_parallel_path_matches_naive() {
        // Force the multi-threaded branch (m*n >= threshold).
        let a = random_matrix(300, 40, 8);
        let b = random_matrix(40, 300, 9);
        let fast = matmul(&a, &b).unwrap();
        let slow = naive_matmul(&a, &b);
        assert!(fast.allclose(&slow, 1e-2));
    }

    #[test]
    fn transpose_round_trip() {
        let a = random_matrix(5, 8, 10);
        let tt = transpose2d(&transpose2d(&a).unwrap()).unwrap();
        assert!(tt.allclose(&a, 0.0));
    }
}
