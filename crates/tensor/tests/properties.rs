//! Property-based tests for the tensor kernels.
//!
//! These check algebraic laws (commutativity, adjointness, linearity) on
//! randomly shaped and randomly filled tensors rather than hand-picked
//! examples, using the in-repo deterministic harness in
//! [`sf_tensor::testkit`].

use sf_tensor::testkit::check_cases;
use sf_tensor::{
    avg_pool2d, avg_pool2d_backward, conv2d, conv2d_backward, im2col, matmul, max_pool2d,
    max_pool2d_backward, transpose2d, upsample_nearest2d, upsample_nearest2d_backward, Conv2dSpec,
    Tensor, TensorRng,
};

#[test]
fn add_commutes() {
    check_cases(64, |c| {
        let shape = c.shape(1..4, 1..5);
        let mut rng = TensorRng::seed_from(1);
        let a = rng.uniform(&shape, -1.0, 1.0);
        let b = rng.uniform(&shape, -1.0, 1.0);
        assert!(a.add(&b).allclose(&b.add(&a), 1e-6));
    });
}

#[test]
fn mul_distributes_over_add() {
    check_cases(64, |c| {
        let shape = c.shape(1..4, 1..5);
        let mut rng = TensorRng::seed_from(2);
        let a = rng.uniform(&shape, -1.0, 1.0);
        let b = rng.uniform(&shape, -1.0, 1.0);
        let cc = rng.uniform(&shape, -1.0, 1.0);
        let lhs = a.mul(&b.add(&cc));
        let rhs = a.mul(&b).add(&a.mul(&cc));
        assert!(lhs.allclose(&rhs, 1e-4));
    });
}

#[test]
fn scale_is_linear() {
    check_cases(64, |c| {
        let shape = c.shape(1..4, 1..5);
        let k = c.f32_in(-3.0, 3.0);
        let mut rng = TensorRng::seed_from(3);
        let a = rng.uniform(&shape, -1.0, 1.0);
        let b = rng.uniform(&shape, -1.0, 1.0);
        let lhs = a.add(&b).scale(k);
        let rhs = a.scale(k).add(&b.scale(k));
        assert!(lhs.allclose(&rhs, 1e-4));
    });
}

#[test]
fn sum_invariant_under_reshape() {
    check_cases(64, |c| {
        let data: Vec<f32> = (0..12).map(|_| c.f32_in(-5.0, 5.0)).collect();
        let t = Tensor::from_vec(data, &[12]).unwrap();
        let r = t.reshape(&[3, 4]).unwrap();
        assert!((t.sum() - r.sum()).abs() < 1e-4);
        assert!((t.max() - r.max()).abs() < 1e-6);
    });
}

#[test]
fn matmul_associates_with_transpose() {
    check_cases(64, |c| {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let mut rng = TensorRng::seed_from(c.case);
        let a = rng.uniform(&[3, 4], -1.0, 1.0);
        let b = rng.uniform(&[4, 5], -1.0, 1.0);
        let lhs = transpose2d(&matmul(&a, &b).unwrap()).unwrap();
        let rhs = matmul(&transpose2d(&b).unwrap(), &transpose2d(&a).unwrap()).unwrap();
        assert!(lhs.allclose(&rhs, 1e-4));
    });
}

#[test]
fn conv_is_linear_in_input() {
    check_cases(64, |c| {
        let mut rng = TensorRng::seed_from(c.case);
        let x1 = rng.uniform(&[1, 2, 5, 5], -1.0, 1.0);
        let x2 = rng.uniform(&[1, 2, 5, 5], -1.0, 1.0);
        let w = rng.uniform(&[3, 2, 3, 3], -1.0, 1.0);
        let spec = Conv2dSpec::same(3);
        let lhs = conv2d(&x1.add(&x2), &w, None, spec).unwrap();
        let rhs = conv2d(&x1, &w, None, spec)
            .unwrap()
            .add(&conv2d(&x2, &w, None, spec).unwrap());
        assert!(lhs.allclose(&rhs, 1e-3));
    });
}

#[test]
fn conv_gradient_is_inner_product_consistent() {
    check_cases(64, |c| {
        // <dY, conv(x, w)> == <conv2d_backward wrt x applied to dY, x>
        // when conv has no bias (linearity of the map x -> conv(x, w)).
        let mut rng = TensorRng::seed_from(c.case);
        let x = rng.uniform(&[1, 2, 4, 4], -1.0, 1.0);
        let w = rng.uniform(&[2, 2, 3, 3], -1.0, 1.0);
        let spec = Conv2dSpec::same(3);
        let y = conv2d(&x, &w, None, spec).unwrap();
        let dy = rng.uniform(y.shape(), -1.0, 1.0);
        let (gx, _, _) = conv2d_backward(&x, &w, &dy, spec).unwrap();
        let lhs: f32 = y.data().iter().zip(dy.data()).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(gx.data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2, "lhs={lhs} rhs={rhs}");
    });
}

#[test]
fn max_pool_backward_conserves_gradient_mass() {
    check_cases(64, |c| {
        let mut rng = TensorRng::seed_from(c.case);
        let x = rng.uniform(&[2, 2, 4, 6], -1.0, 1.0);
        let (y, arg) = max_pool2d(&x, 2, 2).unwrap();
        let dy = rng.uniform(y.shape(), 0.0, 1.0);
        let gx = max_pool2d_backward(&dy, &arg, x.shape()).unwrap();
        assert!((gx.sum() - dy.sum()).abs() < 1e-3);
    });
}

#[test]
fn avg_pool_backward_conserves_gradient_mass() {
    check_cases(64, |c| {
        let mut rng = TensorRng::seed_from(c.case);
        let x = rng.uniform(&[1, 3, 6, 6], -1.0, 1.0);
        let y = avg_pool2d(&x, 2, 2).unwrap();
        let dy = rng.uniform(y.shape(), -1.0, 1.0);
        let gx = avg_pool2d_backward(&dy, x.shape(), 2, 2).unwrap();
        assert!((gx.sum() - dy.sum()).abs() < 1e-3);
    });
}

#[test]
fn upsample_then_pool_is_identity() {
    check_cases(64, |c| {
        let factor = c.usize_in(1, 4);
        let mut rng = TensorRng::seed_from(c.case);
        let x = rng.uniform(&[1, 2, 3, 4], -1.0, 1.0);
        let up = upsample_nearest2d(&x, factor).unwrap();
        let down = avg_pool2d(&up, factor, factor).unwrap();
        assert!(down.allclose(&x, 1e-5));
    });
}

#[test]
fn upsample_backward_is_adjoint() {
    check_cases(64, |c| {
        let mut rng = TensorRng::seed_from(c.case);
        let x = rng.uniform(&[1, 1, 3, 3], -1.0, 1.0);
        let y = upsample_nearest2d(&x, 2).unwrap();
        let dy = rng.uniform(y.shape(), -1.0, 1.0);
        let gx = upsample_nearest2d_backward(&dy, 2).unwrap();
        let lhs: f32 = y.data().iter().zip(dy.data()).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(gx.data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3);
    });
}

#[test]
fn im2col_preserves_values() {
    check_cases(64, |c| {
        // Each input pixel appears in im2col output; with stride = kernel
        // (non-overlapping), the multiset of values is preserved exactly.
        let mut rng = TensorRng::seed_from(c.case);
        let x = rng.uniform(&[1, 4, 4], -1.0, 1.0);
        let cols = im2col(&x, 2, 2, Conv2dSpec::new(2, 0)).unwrap();
        let mut a: Vec<f32> = x.data().to_vec();
        let mut b: Vec<f32> = cols.data().to_vec();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        assert_eq!(a, b);
    });
}

#[test]
fn stack_then_index_round_trips() {
    check_cases(64, |c| {
        let mut rng = TensorRng::seed_from(c.case);
        let items: Vec<Tensor> = (0..3).map(|_| rng.uniform(&[2, 3], -1.0, 1.0)).collect();
        let stacked = Tensor::stack(&items).unwrap();
        for (i, item) in items.iter().enumerate() {
            assert!(stacked.index_axis0(i).allclose(item, 0.0));
        }
    });
}

#[test]
fn tensor_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Tensor>();
}
