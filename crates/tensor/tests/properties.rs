//! Property-based tests for the tensor kernels.
//!
//! These check algebraic laws (commutativity, adjointness, linearity) on
//! randomly shaped and randomly filled tensors rather than hand-picked
//! examples.

use proptest::prelude::*;
use sf_tensor::{
    avg_pool2d, avg_pool2d_backward, conv2d, conv2d_backward, im2col, matmul, max_pool2d,
    max_pool2d_backward, transpose2d, upsample_nearest2d, upsample_nearest2d_backward, Conv2dSpec,
    Tensor, TensorRng,
};

fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..5, 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(shape in small_shape()) {
        let mut rng = TensorRng::seed_from(1);
        let a = rng.uniform(&shape, -1.0, 1.0);
        let b = rng.uniform(&shape, -1.0, 1.0);
        prop_assert!(a.add(&b).allclose(&b.add(&a), 1e-6));
    }

    #[test]
    fn mul_distributes_over_add(shape in small_shape()) {
        let mut rng = TensorRng::seed_from(2);
        let a = rng.uniform(&shape, -1.0, 1.0);
        let b = rng.uniform(&shape, -1.0, 1.0);
        let c = rng.uniform(&shape, -1.0, 1.0);
        let lhs = a.mul(&b.add(&c));
        let rhs = a.mul(&b).add(&a.mul(&c));
        prop_assert!(lhs.allclose(&rhs, 1e-4));
    }

    #[test]
    fn scale_is_linear(shape in small_shape(), k in -3.0f32..3.0) {
        let mut rng = TensorRng::seed_from(3);
        let a = rng.uniform(&shape, -1.0, 1.0);
        let b = rng.uniform(&shape, -1.0, 1.0);
        let lhs = a.add(&b).scale(k);
        let rhs = a.scale(k).add(&b.scale(k));
        prop_assert!(lhs.allclose(&rhs, 1e-4));
    }

    #[test]
    fn sum_invariant_under_reshape(data in proptest::collection::vec(-5.0f32..5.0, 12)) {
        let t = Tensor::from_vec(data, &[12]).unwrap();
        let r = t.reshape(&[3, 4]).unwrap();
        prop_assert!((t.sum() - r.sum()).abs() < 1e-4);
        prop_assert!((t.max() - r.max()).abs() < 1e-6);
    }

    #[test]
    fn matmul_associates_with_transpose(seed in 0u64..1000) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let mut rng = TensorRng::seed_from(seed);
        let a = rng.uniform(&[3, 4], -1.0, 1.0);
        let b = rng.uniform(&[4, 5], -1.0, 1.0);
        let lhs = transpose2d(&matmul(&a, &b).unwrap()).unwrap();
        let rhs = matmul(&transpose2d(&b).unwrap(), &transpose2d(&a).unwrap()).unwrap();
        prop_assert!(lhs.allclose(&rhs, 1e-4));
    }

    #[test]
    fn conv_is_linear_in_input(seed in 0u64..1000) {
        let mut rng = TensorRng::seed_from(seed);
        let x1 = rng.uniform(&[1, 2, 5, 5], -1.0, 1.0);
        let x2 = rng.uniform(&[1, 2, 5, 5], -1.0, 1.0);
        let w = rng.uniform(&[3, 2, 3, 3], -1.0, 1.0);
        let spec = Conv2dSpec::same(3);
        let lhs = conv2d(&x1.add(&x2), &w, None, spec).unwrap();
        let rhs = conv2d(&x1, &w, None, spec)
            .unwrap()
            .add(&conv2d(&x2, &w, None, spec).unwrap());
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    #[test]
    fn conv_gradient_is_inner_product_consistent(seed in 0u64..500) {
        // <dY, conv(x, w)> == <conv2d_backward wrt x applied to dY, x>
        // when conv has no bias (linearity of the map x -> conv(x, w)).
        let mut rng = TensorRng::seed_from(seed);
        let x = rng.uniform(&[1, 2, 4, 4], -1.0, 1.0);
        let w = rng.uniform(&[2, 2, 3, 3], -1.0, 1.0);
        let spec = Conv2dSpec::same(3);
        let y = conv2d(&x, &w, None, spec).unwrap();
        let dy = rng.uniform(y.shape(), -1.0, 1.0);
        let (gx, _, _) = conv2d_backward(&x, &w, &dy, spec).unwrap();
        let lhs: f32 = y.data().iter().zip(dy.data()).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(gx.data()).map(|(&a, &b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2, "lhs={} rhs={}", lhs, rhs);
    }

    #[test]
    fn max_pool_backward_conserves_gradient_mass(seed in 0u64..1000) {
        let mut rng = TensorRng::seed_from(seed);
        let x = rng.uniform(&[2, 2, 4, 6], -1.0, 1.0);
        let (y, arg) = max_pool2d(&x, 2, 2).unwrap();
        let dy = rng.uniform(y.shape(), 0.0, 1.0);
        let gx = max_pool2d_backward(&dy, &arg, x.shape()).unwrap();
        prop_assert!((gx.sum() - dy.sum()).abs() < 1e-3);
    }

    #[test]
    fn avg_pool_backward_conserves_gradient_mass(seed in 0u64..1000) {
        let mut rng = TensorRng::seed_from(seed);
        let x = rng.uniform(&[1, 3, 6, 6], -1.0, 1.0);
        let y = avg_pool2d(&x, 2, 2).unwrap();
        let dy = rng.uniform(y.shape(), -1.0, 1.0);
        let gx = avg_pool2d_backward(&dy, x.shape(), 2, 2).unwrap();
        prop_assert!((gx.sum() - dy.sum()).abs() < 1e-3);
    }

    #[test]
    fn upsample_then_pool_is_identity(seed in 0u64..1000, factor in 1usize..4) {
        let mut rng = TensorRng::seed_from(seed);
        let x = rng.uniform(&[1, 2, 3, 4], -1.0, 1.0);
        let up = upsample_nearest2d(&x, factor).unwrap();
        let down = avg_pool2d(&up, factor, factor).unwrap();
        prop_assert!(down.allclose(&x, 1e-5));
    }

    #[test]
    fn upsample_backward_is_adjoint(seed in 0u64..1000) {
        let mut rng = TensorRng::seed_from(seed);
        let x = rng.uniform(&[1, 1, 3, 3], -1.0, 1.0);
        let y = upsample_nearest2d(&x, 2).unwrap();
        let dy = rng.uniform(y.shape(), -1.0, 1.0);
        let gx = upsample_nearest2d_backward(&dy, 2).unwrap();
        let lhs: f32 = y.data().iter().zip(dy.data()).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(gx.data()).map(|(&a, &b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn im2col_preserves_values(seed in 0u64..1000) {
        // Each input pixel appears in im2col output; with stride = kernel
        // (non-overlapping), the multiset of values is preserved exactly.
        let mut rng = TensorRng::seed_from(seed);
        let x = rng.uniform(&[1, 4, 4], -1.0, 1.0);
        let cols = im2col(&x, 2, 2, Conv2dSpec::new(2, 0)).unwrap();
        let mut a: Vec<f32> = x.data().to_vec();
        let mut b: Vec<f32> = cols.data().to_vec();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn stack_then_index_round_trips(seed in 0u64..1000) {
        let mut rng = TensorRng::seed_from(seed);
        let items: Vec<Tensor> = (0..3).map(|_| rng.uniform(&[2, 3], -1.0, 1.0)).collect();
        let stacked = Tensor::stack(&items).unwrap();
        for (i, item) in items.iter().enumerate() {
            prop_assert!(stacked.index_axis0(i).allclose(item, 0.0));
        }
    }
}

#[test]
fn tensor_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Tensor>();
}
