//! The pooled parallel kernels must be *bit-identical* to serial
//! references, not merely close: chunk boundaries are pure functions of the
//! problem size and every chunk runs the same serial inner kernel, so no
//! floating-point reassociation may occur. These tests compare with `==`.

use sf_tensor::{
    avg_pool2d, conv2d, conv2d_backward, matmul, max_pool2d, Conv2dSpec, Tensor, TensorRng,
};

/// Serial reference for the library's `i-k-j` matmul kernel, replicating
/// its exact accumulation order.
fn serial_ikj(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for i in 0..m {
        for (p, &av) in ad[i * k..(i + 1) * k].iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            for (o, &bv) in od[i * n..(i + 1) * n]
                .iter_mut()
                .zip(&bd[p * n..(p + 1) * n])
            {
                *o += av * bv;
            }
        }
    }
    out
}

#[test]
fn large_matmul_is_bit_identical_to_serial() {
    let mut rng = TensorRng::seed_from(41);
    // 512×96 · 96×512 → 256k output elements, well past PARALLEL_THRESHOLD.
    let a = rng.uniform(&[512, 96], -2.0, 2.0);
    let b = rng.uniform(&[96, 512], -2.0, 2.0);
    let parallel = matmul(&a, &b).unwrap();
    let serial = serial_ikj(&a, &b);
    assert_eq!(parallel.data(), serial.data());
}

#[test]
fn batched_conv_forward_is_bit_identical_to_per_image() {
    let mut rng = TensorRng::seed_from(42);
    let x = rng.uniform(&[8, 3, 12, 12], -1.0, 1.0);
    let w = rng.uniform(&[6, 3, 3, 3], -1.0, 1.0);
    let bias = rng.uniform(&[6], -0.5, 0.5);
    let spec = Conv2dSpec::same(3);
    let batched = conv2d(&x, &w, Some(&bias), spec).unwrap();
    // Serial reference: run each image through conv2d on its own (a batch
    // of one always computes inline on the calling thread).
    for img in 0..8 {
        let xi = x.index_axis0(img).reshape(&[1, 3, 12, 12]).unwrap();
        let yi = conv2d(&xi, &w, Some(&bias), spec).unwrap();
        let plane = yi.numel();
        assert_eq!(
            &batched.data()[img * plane..(img + 1) * plane],
            yi.data(),
            "image {img} diverged"
        );
    }
}

#[test]
fn batched_conv_backward_is_bit_identical_to_serial_reduction() {
    let mut rng = TensorRng::seed_from(43);
    let x = rng.uniform(&[6, 2, 8, 8], -1.0, 1.0);
    let w = rng.uniform(&[4, 2, 3, 3], -1.0, 1.0);
    let spec = Conv2dSpec::new(1, 1);
    let y = conv2d(&x, &w, None, spec).unwrap();
    let dy = rng.uniform(y.shape(), -1.0, 1.0);
    let (gx, gw, gb) = conv2d_backward(&x, &w, &dy, spec).unwrap();
    // Serial reference: per-image backward passes reduced in image order —
    // exactly the order the parallel implementation promises to keep.
    let mut ref_gw = Tensor::zeros(gw.shape());
    let mut ref_gb = Tensor::zeros(gb.shape());
    for img in 0..6 {
        let xi = x.index_axis0(img).reshape(&[1, 2, 8, 8]).unwrap();
        let dyi = dy.index_axis0(img).reshape(&[1, 4, 8, 8]).unwrap();
        let (gxi, gwi, gbi) = conv2d_backward(&xi, &w, &dyi, spec).unwrap();
        let plane = gxi.numel();
        assert_eq!(&gx.data()[img * plane..(img + 1) * plane], gxi.data());
        ref_gw.add_assign(&gwi);
        ref_gb.add_assign(&gbi);
    }
    assert_eq!(gw.data(), ref_gw.data());
    assert_eq!(gb.data(), ref_gb.data());
}

#[test]
fn pooling_is_bit_identical_to_per_plane() {
    let mut rng = TensorRng::seed_from(44);
    let x = rng.uniform(&[4, 5, 10, 10], -1.0, 1.0);
    let (y, arg) = max_pool2d(&x, 2, 2).unwrap();
    let avg = avg_pool2d(&x, 3, 1).unwrap();
    // Serial reference: one image (4 planes → 1 plane each when sliced to
    // [1, 1, H, W]) runs inline on the calling thread.
    let plane_in = 100;
    let max_plane = y.numel() / 20;
    let avg_plane = avg.numel() / 20;
    for p in 0..20 {
        let xi = Tensor::from_vec(
            x.data()[p * plane_in..(p + 1) * plane_in].to_vec(),
            &[1, 1, 10, 10],
        )
        .unwrap();
        let (yi, argi) = max_pool2d(&xi, 2, 2).unwrap();
        assert_eq!(&y.data()[p * max_plane..(p + 1) * max_plane], yi.data());
        // argmax indices are plane-relative in the single-plane reference.
        let rebased: Vec<usize> = argi.iter().map(|&i| i + p * plane_in).collect();
        assert_eq!(&arg[p * max_plane..(p + 1) * max_plane], &rebased[..]);
        let ai = avg_pool2d(&xi, 3, 1).unwrap();
        assert_eq!(&avg.data()[p * avg_plane..(p + 1) * avg_plane], ai.data());
    }
}
