#!/usr/bin/env bash
# The full local CI gate: formatting, lints, the tier-1 build + test
# suite, and the hermetic-build guard. Run from anywhere in the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> guard: crate manifests must use only path dependencies"
# The workspace builds offline; a version/git/registry dependency in any
# crate manifest would break that. [workspace.dependencies] in the root
# manifest is the single source of truth and is checked the same way.
bad=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    # Inside dependency tables, every entry must be `{ path = ... }` or
    # `{ workspace = true }`; flag version/git/registry requirements.
    if awk '
        /^\[/ { in_deps = ($0 ~ /dependencies\]$/) }
        in_deps && /^[a-zA-Z0-9_-]+[ \t]*=/ {
            if ($0 !~ /path[ \t]*=/ && $0 !~ /workspace[ \t]*=[ \t]*true/) {
                print FILENAME ": " $0
                found = 1
            }
        }
        END { exit !found }
    ' "$manifest"; then
        bad=1
    fi
done
if [ "$bad" -ne 0 ]; then
    echo "error: non-path dependency found — the build must stay hermetic" >&2
    exit 1
fi
echo "    ok: all dependencies are path-only"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> fault-matrix smoke (sensor fault injection + graceful degradation)"
cargo test -q -p sf-bench --test experiments_smoke fault_matrix_smoke

echo "==> plan check (compiled plan vs graph path, bitwise)"
# Compiles every fusion scheme's plan on the tiny network and diffs its
# outputs against the unfused graph forward; exits non-zero on any
# nonzero delta or a scratch high-water mark above the reservation.
./target/release/roadseg plan --check --smoke

echo "==> serve-bench smoke (dynamic batching server end-to-end)"
# Tiny net, 4 clients x 8 requests; --smoke exits non-zero unless every
# request was served (zero dropped, rejected, or poisoned).
./target/release/roadseg serve-bench --smoke

echo "==> chaos smoke (seeded fault schedule, conservation + reproducibility)"
# Runs the smoke schedule twice through sf-chaos; exits non-zero if any
# request is lost, the tally is not conserved, or the two runs' fault
# fingerprints differ.
./target/release/roadseg chaos --smoke

echo "==> fleet chaos smoke (replica kills, hot swap, shadow deploy)"
# Runs the fleet smoke schedule twice; exits non-zero on a conservation
# violation, a router-vs-replica reconciliation mismatch, a deploy
# casualty, a nonzero shadow diff, or same-seed fingerprint divergence.
./target/release/roadseg chaos --fleet --smoke

echo "==> soak smoke (weather fronts + multi-LiDAR rig + fault bursts, long-haul)"
# Runs the CI-sized 240-frame scenario twice against a 3-replica fleet;
# exits non-zero unless every window conserves the fleet ledger, the
# scratch-arena peak plateaus, the burst source's breaker trips and
# re-closes, and the two runs' ledger fingerprints are identical.
./target/release/roadseg soak --smoke

echo "==> fleet-bench smoke (routing + mid-run kill/revive/hot-swap)"
# 2 replicas under live load with a kill, a revival and a retrained-model
# hot swap mid-run; --smoke exits non-zero unless every request is served
# and the fleet ledger reconciles with zero failed legs.
./target/release/roadseg fleet-bench --smoke --kill --deploy --replicas 2

echo "==> int8 quantization smoke (exp_quant sweep at quick scale)"
# Runs the calibration-size x batch-size sweep end to end: weight
# compression ~4x, bounded MaxF delta, bit-stable int8 outputs.
cargo test -q -p sf-bench --test experiments_smoke quant_smoke
./target/release/exp_quant --quick > /dev/null

echo "==> int8 parity gate (quantize round trip + infer --int8 agreement)"
# Trains a tiny checkpoint, quantizes it to an SFM1 v3 file, re-evaluates
# the quantized file through the transparent f32 loader, and gates on the
# int8-vs-f32 classification agreement of a seeded generated frame.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
./target/release/roadseg train --out "$tmp/model.sfm" --epochs 1 \
    --train-per-category 1 --test-per-category 1 > /dev/null
./target/release/roadseg quantize --model "$tmp/model.sfm" \
    --out "$tmp/model.int8.sfm" --calib-samples 2
./target/release/roadseg eval --model "$tmp/model.int8.sfm" \
    --test-per-category 1 > /dev/null
./target/release/roadseg generate --out "$tmp/frames" --count 1 > /dev/null
rgb="$(ls "$tmp"/frames/*.rgb.ppm | head -1)"
depth="$(ls "$tmp"/frames/*.depth.pgm | head -1)"
./target/release/roadseg infer --model "$tmp/model.sfm" \
    --rgb "$rgb" --depth "$depth" --out "$tmp/overlay.ppm" \
    --int8 --parity-min 0.9

echo "==> guard: no deprecated-API escape hatches"
# The one-shot predict and submit_with_deadline shims are gone; an
# #[allow(deprecated)] in crate code would let a resurrected shim slip
# past clippy's -D warnings.
if grep -rn "allow(deprecated)" crates/; then
    echo "error: allow(deprecated) found — migrate to the current API instead" >&2
    exit 1
fi
echo "    ok: no allow(deprecated) in crates/"

echo "==> ci.sh: all green"
