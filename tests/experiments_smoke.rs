//! Smoke tests for every experiment harness at quick scale — the same
//! code paths the `exp_*` binaries run for the paper's tables/figures.

use sf_bench::experiments::fleet::{self, KillSchedule};
use sf_bench::experiments::{
    chaos, fault_matrix, fig3, fig6, fig7, fig8, fig9, quant, serving, table1,
};
use sf_bench::ExperimentScale;
use sf_core::FusionScheme;
use sf_scene::RoadCategory;
use sf_serve::DispatchPolicy;

const SCALE: ExperimentScale = ExperimentScale::Quick;

#[test]
fn table1_smoke() {
    let result = table1::run(SCALE);
    assert_eq!(result.rows.len(), 5);
    // Headline claim: only Feature Disparity passes both tests.
    let fd = result.row("Feature Disparity").unwrap();
    assert!(fd.spatial_information && fd.luminance_tolerant);
    assert!(!table1::render(&result).is_empty());
}

#[test]
fn fig3_smoke() {
    let result = fig3::run(SCALE);
    assert_eq!(result.baseline_fd.len(), result.filtered_fd.len());
    assert!(result.baseline_f > 0.0 && result.filtered_f > 0.0);
    let text = fig3::render(&result);
    assert!(text.contains("Fig. 3(a)"));
    assert!(text.contains("Fig. 3(b)"));
}

#[test]
fn fig6_smoke() {
    let result = fig6::run(SCALE);
    assert_eq!(result.tables.len(), 3);
    for category in RoadCategory::ALL {
        let table = result.table(category);
        assert_eq!(table.evals.len(), 5);
        // best_by_f never panics and names a real scheme.
        let best = table.best_by_f();
        assert!(FusionScheme::ALL.contains(&best));
    }
    assert!(fig6::render(&result).contains("UU road scene"));
}

#[test]
fn fig7_smoke() {
    let result = fig7::run(SCALE, false);
    assert_eq!(result.points.len(), 5);
    // The architecture-determined cost ordering is scale-independent.
    let params = |l: &str| result.point(l).unwrap().cost.params;
    assert!(params("AB") > params("AU"));
    assert!(params("AU") > params("Baseline"));
    assert!(params("Baseline") > params("WS"));
    assert!(params("WS") > params("BS"));
    assert!(fig7::render(&result).contains("kParams"));
}

#[test]
fn fig8_smoke() {
    let result = fig8::run(SCALE, &[]);
    assert_eq!(result.rows.len(), 6);
    for row in &result.rows {
        assert_eq!(row.f_scores.len(), 3);
        for &f in &row.f_scores {
            assert!((0.0..=100.0).contains(&f));
        }
    }
    assert!(fig8::render(&result).contains("alpha"));
}

#[test]
fn fault_matrix_smoke() {
    let result = fault_matrix::run(SCALE);
    assert_eq!(
        result.cells.len(),
        fault_matrix::SEVERITIES.len() * 6,
        "one cell per severity x fault kind"
    );
    // The fallback policy can only ever quarantine; it never evaluates
    // more frames than exist.
    for cell in &result.cells {
        assert!((0.0..=100.0).contains(&cell.degraded.f_score), "{cell:?}");
    }
    let text = fault_matrix::render(&result);
    assert!(text.contains("Fault"));
    assert!(text.contains("(clean)"));
}

#[test]
fn fig9_smoke() {
    let dir = std::env::temp_dir().join("sf_fig9_smoke");
    let result = fig9::run(SCALE, Some(&dir)).expect("fig9 runs");
    assert_eq!(result.panels.len(), 3);
    assert_eq!(result.files.len(), 9);
    let text = fig9::render(&result);
    assert!(text.contains("pixel accuracy"));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn serving_smoke() {
    let result = serving::run(SCALE);
    // Full grid measured, every request in every cell completed.
    assert_eq!(
        result.cells.len(),
        result.batch_sizes.len() * result.client_counts.len()
    );
    for cell in &result.cells {
        assert_eq!(cell.completed, (cell.clients * 6) as u64);
        assert!(cell.throughput_rps > 0.0);
    }
    // The dynamic batcher is bit-identical to batch=1 serving.
    assert!(
        result.correctness_max_delta <= 1e-6,
        "batched serving deviated: {}",
        result.correctness_max_delta
    );
    let text = serving::render(&result);
    assert!(text.contains("max_batch"));
    assert!(text.contains("correctness"));
}

#[test]
fn quant_smoke() {
    let result = quant::run(SCALE);
    assert_eq!(
        result.cells.len(),
        result.calib_sizes.len() * result.batch_sizes.len()
    );
    // The headline deploy win: int8 weights are about 4x smaller.
    assert!(
        result.int8_weight_bytes * 3 < result.f32_weight_bytes
            && result.int8_weight_bytes * 5 > result.f32_weight_bytes,
        "int8 {} vs f32 {}",
        result.int8_weight_bytes,
        result.f32_weight_bytes
    );
    for cell in &result.cells {
        assert!(cell.reproducible, "int8 cells are bit-stable: {cell:?}");
        assert!(cell.f32_ips > 0.0 && cell.int8_ips > 0.0, "{cell:?}");
        assert!((0.0..=100.0).contains(&cell.int8_f), "{cell:?}");
        // Quantization error is bounded: int8 stays within a few points
        // of the f32 model on the pooled split.
        assert!(cell.delta_f.abs() < 15.0, "{cell:?}");
    }
    // Cells sharing a calibration size share scales, hence metrics.
    let c0 = result
        .cell(result.calib_sizes[0], result.batch_sizes[0])
        .unwrap();
    let c1 = result
        .cell(result.calib_sizes[0], result.batch_sizes[1])
        .unwrap();
    assert_eq!(c0.int8_f, c1.int8_f);
    let text = quant::render(&result);
    assert!(text.contains("smaller"));
    assert!(text.contains("fingerprint"));
    assert!(text.contains("note:"));
}

#[test]
fn fleet_smoke() {
    let result = fleet::run(SCALE);
    // Quick grid: 2 replicas x {hash, least} x {none, kill+swap}.
    assert_eq!(result.cells.len(), 4);
    for cell in &result.cells {
        // run() already fails hard on conservation, cross-check and
        // deploy-casualty violations; assert the recorded ledger agrees.
        assert!(cell.report.stats.is_conserved(), "{cell:?}");
        cell.report.stats.cross_check().expect("reconciled");
        assert!(cell.reproducible, "fleet cells are deterministic: {cell:?}");
        assert_eq!(cell.report.stats.failed, 0, "{cell:?}");
    }
    // The kill+swap cells actually killed a replica, promoted the
    // retrained model and shadow-diffed zero. (Whether the kill strands
    // queued work to redirect depends on where the hash places the small
    // quick-scale flood; redirect coverage is asserted in the sf-chaos
    // harness tests with schedules tuned for it.)
    for dispatch in [
        DispatchPolicy::ConsistentHash,
        DispatchPolicy::LeastOutstanding,
    ] {
        let swap = result
            .cell(2, dispatch, KillSchedule::KillDeploy)
            .expect("grid cell");
        assert!(swap.report.kills >= 1, "{swap:?}");
        assert!(swap.report.revives >= 1, "{swap:?}");
        assert!(swap.report.stats.promotions >= 1, "{swap:?}");
        assert_eq!(swap.report.stats.shadow_max_delta, 0.0, "{swap:?}");
    }
    let text = fleet::render(&result);
    assert!(text.contains("replicas"));
    assert!(text.contains("zero-downtime"));
    assert!(text.contains("reproducible"));
}

#[test]
fn chaos_smoke() {
    let result = chaos::run(SCALE);
    assert_eq!(
        result.cells.len(),
        result.fault_rates.len() * result.deadlines_ms.len() * result.thresholds.len()
    );
    for cell in &result.cells {
        // run() already fails hard on conservation violations; assert the
        // rendered tally agrees anyway, and that the quick grid's generous
        // deadlines replay bit-identically.
        assert!(cell.report.tally.is_conserved(), "{cell:?}");
        assert!(cell.reproducible, "quick cells are deterministic: {cell:?}");
        // Every schedule carries a panic, stale and storm scene, so each
        // terminal bucket is exercised in every cell.
        assert!(cell.report.tally.failed > 0, "{cell:?}");
        assert!(cell.report.tally.expired > 0, "{cell:?}");
        assert!(cell.report.tally.rejected > 0, "{cell:?}");
    }
    // The corrupt half of the traffic is quarantined; clean traffic is not.
    let faulty = result.cell(0.5, 10_000, 0.5).expect("grid cell");
    let clean = result.cell(0.0, 10_000, 0.5).expect("grid cell");
    assert!(faulty.report.quarantined > 0, "{faulty:?}");
    assert_eq!(clean.report.quarantined, 0, "{clean:?}");
    let text = chaos::render(&result);
    assert!(text.contains("fault"));
    assert!(text.contains("conservation"));
    assert!(text.contains("reproducible"));
}
