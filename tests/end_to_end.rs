//! End-to-end integration tests spanning every crate: scene → sensors →
//! dataset → network → training → BEV evaluation.

use sf_autograd::Graph;
use sf_core::{
    evaluate, fd_loss, measure_disparity, predict_probability, train, EvalOptions, FusionNet,
    FusionScheme, NetworkConfig, TrainConfig,
};
use sf_dataset::{DatasetConfig, RoadDataset};
use sf_nn::{Mode, Parameterized};
use sf_scene::RoadCategory;

fn tiny_dataset() -> (DatasetConfig, RoadDataset) {
    let config = DatasetConfig {
        width: 48,
        height: 16,
        train_per_category: 6,
        test_per_category: 3,
        seed: 99,
        adverse_fraction: 0.3,
        traffic_fraction: 0.25,
        ..DatasetConfig::standard()
    };
    let data = RoadDataset::generate(&config);
    (config, data)
}

fn tiny_network() -> NetworkConfig {
    NetworkConfig {
        width: 48,
        height: 16,
        stage_channels: vec![4, 6, 8],
        shared_stages: 1,
        depth_channels: 1,
        seed: 1,
    }
}

#[test]
fn every_architecture_trains_and_evaluates() {
    let (dataset_config, data) = tiny_dataset();
    let camera = dataset_config.camera();
    let train_config = TrainConfig {
        epochs: 2,
        ..TrainConfig::standard()
    };
    for scheme in FusionScheme::ALL {
        let mut net = FusionNet::new(scheme, &tiny_network()).expect("valid config");
        let report = train(&mut net, &data.train(None), &train_config);
        assert_eq!(report.seg_loss.len(), 2, "{scheme}");
        assert!(report.final_seg_loss().is_finite(), "{scheme}");
        let eval = evaluate(&net, &data.test(None), &camera, &EvalOptions::default());
        for v in eval.as_row() {
            assert!((0.0..=100.0).contains(&v), "{scheme}: metric {v}");
        }
    }
}

#[test]
fn fd_loss_reduces_measured_disparity() {
    // The paper's Fig. 3 mechanism end-to-end: training WITH the FD loss
    // should leave less per-stage feature disparity than training without
    // it, measured with the independent Canny-sketch probe.
    let (_, data) = tiny_dataset();
    let train_samples = data.train(None);
    let probe_samples = data.test(None);
    let config = TrainConfig {
        epochs: 5,
        ..TrainConfig::standard()
    };

    let mut with_loss =
        FusionNet::new(FusionScheme::Baseline, &tiny_network()).expect("valid config");
    train(&mut with_loss, &train_samples, &config.with_alpha(0.5));
    let probe_with = measure_disparity(&mut with_loss, &probe_samples);

    let mut without_loss =
        FusionNet::new(FusionScheme::Baseline, &tiny_network()).expect("valid config");
    train(&mut without_loss, &train_samples, &config.with_alpha(0.0));
    let probe_without = measure_disparity(&mut without_loss, &probe_samples);

    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
    let fd_with = mean(&probe_with.means());
    let fd_without = mean(&probe_without.means());
    assert!(
        fd_with < fd_without + 0.02,
        "FD loss should not increase disparity: with {fd_with}, without {fd_without}"
    );
}

#[test]
fn training_improves_on_every_category() {
    let (dataset_config, data) = tiny_dataset();
    let camera = dataset_config.camera();
    let mut net =
        FusionNet::new(FusionScheme::WeightedSharing, &tiny_network()).expect("valid config");
    let config = TrainConfig {
        epochs: 10,
        ..TrainConfig::standard()
    };
    train(&mut net, &data.train(None), &config);
    for category in RoadCategory::ALL {
        let eval = evaluate(
            &net,
            &data.test(Some(category)),
            &camera,
            &EvalOptions::default(),
        );
        assert!(
            eval.f_score > 40.0,
            "{category}: F-score {:.2} too low after training",
            eval.f_score
        );
    }
}

#[test]
fn weight_sharing_ties_gradients_across_branches() {
    // The shared deep stage receives gradient contributions from BOTH
    // streams; an unshared twin trained identically must diverge from it.
    let (_, data) = tiny_dataset();
    let train_samples = data.train(None);
    let config = TrainConfig {
        epochs: 1,
        ..TrainConfig::standard()
    };
    let mut shared =
        FusionNet::new(FusionScheme::BaseSharing, &tiny_network()).expect("valid config");
    let mut unshared =
        FusionNet::new(FusionScheme::Baseline, &tiny_network()).expect("valid config");
    train(&mut shared, &train_samples, &config);
    train(&mut unshared, &train_samples, &config);
    let count = |n: &mut FusionNet| n.param_count();
    assert!(count(&mut shared) < count(&mut unshared));
}

#[test]
fn fd_loss_on_real_fusion_pairs_is_finite_and_nonnegative() {
    let (_, data) = tiny_dataset();
    let sample = data.train(None)[0].clone();
    let mut net = FusionNet::new(FusionScheme::AllFilterB, &tiny_network()).expect("valid config");
    let mut g = Graph::new();
    let rgb = g.leaf(sample.rgb.reshape(&[1, 3, 16, 48]).unwrap());
    let depth = g.leaf(sample.depth.reshape(&[1, 1, 16, 48]).unwrap());
    let out = net.forward(&mut g, rgb, depth, Mode::Train);
    for &(r, d) in &out.fusion_pairs {
        let loss = fd_loss(&mut g, r, d);
        let v = g.value(loss).at(&[]);
        assert!(v.is_finite() && v >= 0.0, "fd loss {v}");
    }
}

#[test]
fn predictions_are_probabilities_on_all_test_samples() {
    let (_, data) = tiny_dataset();
    let net = FusionNet::new(FusionScheme::Baseline, &tiny_network()).expect("valid config");
    for sample in data.test(None) {
        let prob = predict_probability(&net, sample);
        assert!(prob.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}

#[test]
fn dataset_and_training_are_reproducible_end_to_end() {
    let run = || {
        let (dataset_config, data) = tiny_dataset();
        let camera = dataset_config.camera();
        let mut net =
            FusionNet::new(FusionScheme::AllFilterU, &tiny_network()).expect("valid config");
        let config = TrainConfig {
            epochs: 2,
            ..TrainConfig::standard()
        };
        train(&mut net, &data.train(None), &config);
        evaluate(&net, &data.test(None), &camera, &EvalOptions::default())
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "two identical runs must produce identical metrics");
}
