//! Property-based tests spanning crates: invariants that must hold for
//! arbitrary seeds and configurations, driven by the deterministic
//! `sf_tensor::testkit` harness.

use sf_autograd::Graph;
use sf_core::{
    fd_loss, CompiledPlan, DegradationPolicy, FusionNet, FusionScheme, NetworkConfig, PlanMode,
    Predictor,
};
use sf_dataset::{bev_warp, BevGrid, Sample};
use sf_nn::{Mode, Parameterized};
use sf_scene::{
    render_ground_truth, LidarSpec, Lighting, PinholeCamera, RoadCategory, SceneBuilder,
};
use sf_tensor::testkit::{check_cases, CaseCtx};
use sf_tensor::{Tensor, TensorRng};
use sf_vision::GrayImage;

const CASES: u64 = 12;

fn any_category(c: &mut CaseCtx) -> RoadCategory {
    [
        RoadCategory::UrbanMarked,
        RoadCategory::UrbanMultipleMarked,
        RoadCategory::UrbanUnmarked,
    ][c.usize_in(0, 3)]
}

#[test]
fn every_scene_has_drivable_road_ahead() {
    check_cases(CASES, |c| {
        let seed = c.usize_in(0, 5000) as u64;
        let category = any_category(c);
        let scene = SceneBuilder::new(category, seed).build();
        let camera = PinholeCamera::kitti_like(48, 16);
        let gt = render_ground_truth(&scene, &camera);
        let road_fraction = gt.data().iter().sum::<f32>() / gt.data().len() as f32;
        assert!(road_fraction > 0.03, "road fraction {road_fraction}");
        assert!(road_fraction < 0.9, "road fraction {road_fraction}");
    });
}

#[test]
fn lidar_depth_and_gt_are_lighting_invariant() {
    check_cases(CASES, |c| {
        let seed = c.usize_in(0, 5000) as u64;
        let category = any_category(c);
        let camera = PinholeCamera::kitti_like(48, 16);
        let day = Sample::render(category, seed, "day", Lighting::day(), &camera);
        let night = Sample::render(category, seed, "night", Lighting::night(), &camera);
        assert_eq!(&day.depth, &night.depth);
        assert_eq!(&day.gt, &night.gt);
    });
}

#[test]
fn lidar_returns_scale_with_dropout() {
    check_cases(CASES, |c| {
        let seed = c.usize_in(0, 5000) as u64;
        let scene = SceneBuilder::new(RoadCategory::UrbanMarked, seed).build();
        let clean = LidarSpec {
            dropout: 0.0,
            ..LidarSpec::default()
        };
        let lossy = LidarSpec {
            dropout: 0.3,
            ..LidarSpec::default()
        };
        let n_clean = clean.scan(&scene, &mut TensorRng::seed_from(seed)).len();
        let n_lossy = lossy.scan(&scene, &mut TensorRng::seed_from(seed)).len();
        assert!(n_lossy < n_clean);
        assert!(n_lossy > n_clean / 3);
    });
}

#[test]
fn bev_warp_preserves_mask_range() {
    check_cases(CASES, |c| {
        let seed = c.usize_in(0, 5000) as u64;
        let category = any_category(c);
        let scene = SceneBuilder::new(category, seed).build();
        let camera = PinholeCamera::kitti_like(48, 16);
        let gt = render_ground_truth(&scene, &camera);
        let bev = bev_warp(&gt, &camera, &BevGrid::default());
        assert!(bev.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    });
}

#[test]
fn forward_pass_is_deterministic_per_seed() {
    check_cases(CASES, |c| {
        let scheme = FusionScheme::ALL[c.usize_in(0, 5)];
        let seed = c.usize_in(0, 1000) as u64;
        let config = NetworkConfig {
            width: 32,
            height: 16,
            stage_channels: vec![3, 4],
            shared_stages: 1,
            depth_channels: 1,
            seed,
        };
        let run = || {
            let mut net = FusionNet::new(scheme, &config).expect("valid config");
            let mut rng = TensorRng::seed_from(seed ^ 1);
            let mut g = Graph::new();
            let rgb = g.leaf(rng.uniform(&[1, 3, 16, 32], 0.0, 1.0));
            let depth = g.leaf(rng.uniform(&[1, 1, 16, 32], 0.0, 1.0));
            let out = net.forward(&mut g, rgb, depth, Mode::Eval);
            g.value(out.logits).clone()
        };
        assert_eq!(run(), run());
    });
}

#[test]
fn fd_loss_zero_only_for_identical_pairs() {
    check_cases(CASES, |c| {
        let mut rng = TensorRng::seed_from(c.usize_in(0, 1000) as u64);
        let f = rng.uniform(&[1, 2, 8, 8], 0.0, 1.0);
        let other = rng.uniform(&[1, 2, 8, 8], 0.0, 1.0);
        let mut g = Graph::new();
        let a = g.leaf(f.clone());
        let b = g.leaf(f);
        let cc = g.leaf(other);
        let same = fd_loss(&mut g, a, b);
        let diff = fd_loss(&mut g, a, cc);
        assert!(g.value(same).at(&[]) < 1e-9);
        assert!(g.value(diff).at(&[]) >= 0.0);
    });
}

#[test]
fn param_counts_are_seed_independent() {
    check_cases(CASES, |c| {
        let scheme = FusionScheme::ALL[c.usize_in(0, 5)];
        let s1 = c.usize_in(0, 100) as u64;
        let s2 = c.usize_in(100, 200) as u64;
        let make = |seed| {
            let config = NetworkConfig {
                width: 32,
                height: 16,
                stage_channels: vec![3, 4],
                shared_stages: 1,
                depth_channels: 1,
                seed,
            };
            FusionNet::new(scheme, &config)
                .expect("valid config")
                .param_count()
        };
        assert_eq!(make(s1), make(s2));
    });
}

#[test]
fn depth_images_have_sensible_gradient_structure() {
    // Dense depth must be smooth along the road but keep a strong
    // vertical gradient (near→far), for any category.
    let camera = PinholeCamera::kitti_like(96, 32);
    for category in RoadCategory::ALL {
        let sample = Sample::render(category, 4242, "day", Lighting::day(), &camera);
        let depth = GrayImage::from_raw(96, 32, sample.depth.data().to_vec());
        let bottom_mean: f32 = (0..96).map(|x| depth.get(x, 31)).sum::<f32>() / 96.0;
        let mid_mean: f32 = (0..96).map(|x| depth.get(x, 12)).sum::<f32>() / 96.0;
        assert!(
            bottom_mean > mid_mean,
            "{category}: bottom {bottom_mean} should be nearer than mid {mid_mean}"
        );
    }
}

#[test]
fn compiled_plan_matches_graph_and_bounds_scratch_for_random_configs() {
    check_cases(CASES, |c| {
        // A random valid geometry: stages ∈ {2, 3}, resolution divisible
        // by 2^stages, random channel widths, sharing depth and seed.
        let stages = c.usize_in(2, 4);
        let factor = 1usize << stages;
        let config = NetworkConfig {
            width: factor * c.usize_in(1, 4),
            height: factor * c.usize_in(1, 3),
            stage_channels: (0..stages).map(|_| c.usize_in(2, 6)).collect(),
            shared_stages: c.usize_in(1, stages),
            depth_channels: c.usize_in(1, 3),
            seed: c.seed(),
        };
        let scheme = FusionScheme::ALL[c.usize_in(0, 5)];
        let mut net = FusionNet::new(scheme, &config).expect("random config is valid");
        let (h, w, dc) = (config.height, config.width, config.depth_channels);

        // Warm the BatchNorm running statistics with one train-mode pass
        // so the plan's folded eval constants are non-trivial.
        {
            let mut g = Graph::new();
            let r = g.leaf(c.rng().uniform(&[2, 3, h, w], 0.0, 1.0));
            let d = g.leaf(c.rng().uniform(&[2, dc, h, w], 0.1, 1.0));
            net.forward(&mut g, r, d, Mode::Train);
        }

        let n = c.usize_in(1, 4);
        let rgb = c.rng().uniform(&[n, 3, h, w], 0.0, 1.0);
        let depth = c.rng().uniform(&[n, dc, h, w], 0.1, 1.0);

        // The unfused reference: graph forward in eval mode plus sigmoid.
        let graph_probs = |net: &mut FusionNet, rgb: &Tensor, depth: Option<&Tensor>| {
            let mut g = Graph::new();
            let r = g.leaf(rgb.clone());
            let out = match depth {
                Some(d) => {
                    let d = g.leaf(d.clone());
                    net.forward(&mut g, r, d, Mode::Eval)
                }
                None => net.forward_camera_only(&mut g, r, Mode::Eval),
            };
            let prob = g.sigmoid(out.logits);
            g.value(prob).clone()
        };

        // Both plan modes: bit-identical outputs, and the static scratch
        // reservation must bound the measured live high-water mark.
        for mode in [PlanMode::Fused, PlanMode::CameraOnly] {
            let mut plan = CompiledPlan::compile(&net, mode);
            let with_depth = (mode == PlanMode::Fused).then_some(&depth);
            let got = plan.run_batch(&rgb, with_depth).expect("plan executes");
            let reference = graph_probs(&mut net, &rgb, with_depth);
            assert_eq!(
                got.data(),
                reference.data(),
                "case {}: {scheme} {mode} n={n} diverges from the graph path",
                c.case
            );
            assert!(
                plan.last_high_water_elems() <= plan.reservation_elems(n),
                "case {}: {scheme} {mode} n={n}: high water {} > reservation {}",
                c.case,
                plan.last_high_water_elems(),
                plan.reservation_elems(n)
            );
        }

        // Every degradation policy must route a frame through the
        // Predictor to exactly the graph path it selects.
        let rgb1 = c.rng().uniform(&[3, h, w], 0.0, 1.0);
        let healthy = c.rng().uniform(&[dc, h, w], 0.1, 1.0);
        let dead = Tensor::zeros(&[dc, h, w]);
        let rgb1_b = rgb1.reshape(&[1, 3, h, w]).expect("rgb is [3,H,W]");
        let fused_ref = |net: &mut FusionNet, d: &Tensor| {
            let d_b = d.reshape(&[1, dc, h, w]).expect("depth is [C,H,W]");
            graph_probs(net, &rgb1_b, Some(&d_b))
        };
        let camera_ref = graph_probs(&mut net, &rgb1_b, None);
        for policy in [
            DegradationPolicy::Trust,
            DegradationPolicy::CameraFallback,
            DegradationPolicy::CameraOnly,
        ] {
            let mut predictor = Predictor::compile(&net).with_policy(policy);
            for depth1 in [&healthy, &dead] {
                let prediction = predictor.run(&rgb1, depth1).expect("predictor runs");
                let quarantined = prediction.quarantined.is_some();
                let reference = if quarantined {
                    camera_ref.clone()
                } else {
                    fused_ref(&mut net, depth1)
                };
                assert_eq!(
                    prediction.prob.data(),
                    reference.data(),
                    "case {}: {scheme} {policy} quarantined={quarantined}",
                    c.case
                );
                match policy {
                    DegradationPolicy::Trust => assert!(!quarantined),
                    DegradationPolicy::CameraOnly => assert!(quarantined),
                    // Fallback must quarantine exactly the dead frame.
                    DegradationPolicy::CameraFallback => {
                        assert_eq!(quarantined, std::ptr::eq(depth1, &dead));
                    }
                }
            }
        }
    });
}
