//! Property-based tests spanning crates: invariants that must hold for
//! arbitrary seeds and configurations, driven by the deterministic
//! `sf_tensor::testkit` harness.

use sf_autograd::Graph;
use sf_core::{fd_loss, FusionNet, FusionScheme, NetworkConfig};
use sf_dataset::{bev_warp, BevGrid, Sample};
use sf_nn::{Mode, Parameterized};
use sf_scene::{
    render_ground_truth, LidarSpec, Lighting, PinholeCamera, RoadCategory, SceneBuilder,
};
use sf_tensor::testkit::{check_cases, CaseCtx};
use sf_tensor::TensorRng;
use sf_vision::GrayImage;

const CASES: u64 = 12;

fn any_category(c: &mut CaseCtx) -> RoadCategory {
    [
        RoadCategory::UrbanMarked,
        RoadCategory::UrbanMultipleMarked,
        RoadCategory::UrbanUnmarked,
    ][c.usize_in(0, 3)]
}

#[test]
fn every_scene_has_drivable_road_ahead() {
    check_cases(CASES, |c| {
        let seed = c.usize_in(0, 5000) as u64;
        let category = any_category(c);
        let scene = SceneBuilder::new(category, seed).build();
        let camera = PinholeCamera::kitti_like(48, 16);
        let gt = render_ground_truth(&scene, &camera);
        let road_fraction = gt.data().iter().sum::<f32>() / gt.data().len() as f32;
        assert!(road_fraction > 0.03, "road fraction {road_fraction}");
        assert!(road_fraction < 0.9, "road fraction {road_fraction}");
    });
}

#[test]
fn lidar_depth_and_gt_are_lighting_invariant() {
    check_cases(CASES, |c| {
        let seed = c.usize_in(0, 5000) as u64;
        let category = any_category(c);
        let camera = PinholeCamera::kitti_like(48, 16);
        let day = Sample::render(category, seed, "day", Lighting::day(), &camera);
        let night = Sample::render(category, seed, "night", Lighting::night(), &camera);
        assert_eq!(&day.depth, &night.depth);
        assert_eq!(&day.gt, &night.gt);
    });
}

#[test]
fn lidar_returns_scale_with_dropout() {
    check_cases(CASES, |c| {
        let seed = c.usize_in(0, 5000) as u64;
        let scene = SceneBuilder::new(RoadCategory::UrbanMarked, seed).build();
        let clean = LidarSpec {
            dropout: 0.0,
            ..LidarSpec::default()
        };
        let lossy = LidarSpec {
            dropout: 0.3,
            ..LidarSpec::default()
        };
        let n_clean = clean.scan(&scene, &mut TensorRng::seed_from(seed)).len();
        let n_lossy = lossy.scan(&scene, &mut TensorRng::seed_from(seed)).len();
        assert!(n_lossy < n_clean);
        assert!(n_lossy > n_clean / 3);
    });
}

#[test]
fn bev_warp_preserves_mask_range() {
    check_cases(CASES, |c| {
        let seed = c.usize_in(0, 5000) as u64;
        let category = any_category(c);
        let scene = SceneBuilder::new(category, seed).build();
        let camera = PinholeCamera::kitti_like(48, 16);
        let gt = render_ground_truth(&scene, &camera);
        let bev = bev_warp(&gt, &camera, &BevGrid::default());
        assert!(bev.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    });
}

#[test]
fn forward_pass_is_deterministic_per_seed() {
    check_cases(CASES, |c| {
        let scheme = FusionScheme::ALL[c.usize_in(0, 5)];
        let seed = c.usize_in(0, 1000) as u64;
        let config = NetworkConfig {
            width: 32,
            height: 16,
            stage_channels: vec![3, 4],
            shared_stages: 1,
            depth_channels: 1,
            seed,
        };
        let run = || {
            let mut net = FusionNet::new(scheme, &config).expect("valid config");
            let mut rng = TensorRng::seed_from(seed ^ 1);
            let mut g = Graph::new();
            let rgb = g.leaf(rng.uniform(&[1, 3, 16, 32], 0.0, 1.0));
            let depth = g.leaf(rng.uniform(&[1, 1, 16, 32], 0.0, 1.0));
            let out = net.forward(&mut g, rgb, depth, Mode::Eval);
            g.value(out.logits).clone()
        };
        assert_eq!(run(), run());
    });
}

#[test]
fn fd_loss_zero_only_for_identical_pairs() {
    check_cases(CASES, |c| {
        let mut rng = TensorRng::seed_from(c.usize_in(0, 1000) as u64);
        let f = rng.uniform(&[1, 2, 8, 8], 0.0, 1.0);
        let other = rng.uniform(&[1, 2, 8, 8], 0.0, 1.0);
        let mut g = Graph::new();
        let a = g.leaf(f.clone());
        let b = g.leaf(f);
        let cc = g.leaf(other);
        let same = fd_loss(&mut g, a, b);
        let diff = fd_loss(&mut g, a, cc);
        assert!(g.value(same).at(&[]) < 1e-9);
        assert!(g.value(diff).at(&[]) >= 0.0);
    });
}

#[test]
fn param_counts_are_seed_independent() {
    check_cases(CASES, |c| {
        let scheme = FusionScheme::ALL[c.usize_in(0, 5)];
        let s1 = c.usize_in(0, 100) as u64;
        let s2 = c.usize_in(100, 200) as u64;
        let make = |seed| {
            let config = NetworkConfig {
                width: 32,
                height: 16,
                stage_channels: vec![3, 4],
                shared_stages: 1,
                depth_channels: 1,
                seed,
            };
            FusionNet::new(scheme, &config)
                .expect("valid config")
                .param_count()
        };
        assert_eq!(make(s1), make(s2));
    });
}

#[test]
fn depth_images_have_sensible_gradient_structure() {
    // Dense depth must be smooth along the road but keep a strong
    // vertical gradient (near→far), for any category.
    let camera = PinholeCamera::kitti_like(96, 32);
    for category in RoadCategory::ALL {
        let sample = Sample::render(category, 4242, "day", Lighting::day(), &camera);
        let depth = GrayImage::from_raw(96, 32, sample.depth.data().to_vec());
        let bottom_mean: f32 = (0..96).map(|x| depth.get(x, 31)).sum::<f32>() / 96.0;
        let mid_mean: f32 = (0..96).map(|x| depth.get(x, 12)).sum::<f32>() / 96.0;
        assert!(
            bottom_mean > mid_mean,
            "{category}: bottom {bottom_mean} should be nearer than mid {mid_mean}"
        );
    }
}
