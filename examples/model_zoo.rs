//! Model zoo: instantiate all five fusion architectures of the paper and
//! compare their analytic cost (the Fig. 7 axes) plus a quick accuracy
//! estimate.
//!
//! Run with:
//! ```text
//! cargo run --release -p sf-bench --example model_zoo
//! ```

use sf_core::{evaluate, train, EvalOptions, FusionNet, FusionScheme, NetworkConfig, TrainConfig};
use sf_dataset::{DatasetConfig, RoadDataset};
use sf_nn::Parameterized;

fn main() {
    let net_config = NetworkConfig::standard();
    println!(
        "architecture comparison at {}x{} input, stages {:?}\n",
        net_config.width, net_config.height, net_config.stage_channels
    );

    // Static comparison: parameters and MACs are architecture facts.
    println!(
        "{:<16} {:>10} {:>12} {:>10}",
        "model", "params", "MACs/image", "Δ vs base"
    );
    let base_params = FusionNet::new(FusionScheme::Baseline, &net_config)
        .expect("valid config")
        .cost()
        .params as f64;
    for scheme in FusionScheme::ALL {
        let mut net = FusionNet::new(scheme, &net_config).expect("valid config");
        let cost = net.cost();
        debug_assert_eq!(cost.params as usize, net.param_count());
        println!(
            "{:<16} {:>10} {:>12} {:>+9.1}%",
            scheme.abbrev(),
            cost.params,
            cost.macs,
            (cost.params as f64 / base_params - 1.0) * 100.0
        );
    }

    // Dynamic comparison: a quick training run per architecture.
    let dataset_config = DatasetConfig {
        train_per_category: 8,
        test_per_category: 4,
        ..DatasetConfig::standard()
    };
    let data = RoadDataset::generate(&dataset_config);
    let camera = dataset_config.camera();
    let train_config = TrainConfig {
        epochs: 5,
        ..TrainConfig::standard()
    };
    println!(
        "\nquick training ({} epochs) per model:",
        train_config.epochs
    );
    for scheme in FusionScheme::ALL {
        let mut net = FusionNet::new(scheme, &net_config).expect("valid config");
        train(&mut net, &data.train(None), &train_config);
        let eval = evaluate(&net, &data.test(None), &camera, &EvalOptions::default());
        println!("  {:<16} {eval}", scheme.abbrev());
    }
    println!(
        "\n(for the full Fig. 6/7 protocol run `cargo run --release -p sf-bench --bin exp_fig6`)"
    );
}
