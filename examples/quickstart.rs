//! Quickstart: generate a synthetic KITTI-style dataset, train the
//! AllFilter_U fusion network with the Feature Disparity loss, and
//! evaluate it in bird's-eye view — the full pipeline in ~40 lines.
//!
//! Run with:
//! ```text
//! cargo run --release -p sf-bench --example quickstart
//! ```

use sf_core::{evaluate, train, EvalOptions, FusionNet, FusionScheme, NetworkConfig, TrainConfig};
use sf_dataset::{DatasetConfig, RoadDataset};

fn main() {
    // 1. A small paired RGB+LiDAR-depth dataset over the three KITTI road
    //    categories (UM / UMM / UU), rendered from procedural scenes.
    let dataset_config = DatasetConfig {
        train_per_category: 16,
        test_per_category: 8,
        ..DatasetConfig::standard()
    };
    println!("generating dataset ({} scenes)...", 3 * 24);
    let data = RoadDataset::generate(&dataset_config);

    // 2. The paper's unidirectional Fusion-filter architecture.
    let mut net =
        FusionNet::new(FusionScheme::AllFilterU, &NetworkConfig::standard()).expect("valid config");

    // 3. Train with the combined objective L = L_seg + 0.3 · Σ D_fd.
    let train_config = TrainConfig {
        epochs: 8,
        ..TrainConfig::standard()
    };
    println!(
        "training {} for {} epochs on {} samples...",
        net.scheme(),
        train_config.epochs,
        data.train(None).len()
    );
    let report = train(&mut net, &data.train(None), &train_config);
    println!(
        "segmentation loss: {:.3} -> {:.3}",
        report.seg_loss.first().copied().unwrap_or(f32::NAN),
        report.final_seg_loss()
    );

    // 4. Evaluate in bird's-eye view, exactly like the KITTI server.
    let camera = dataset_config.camera();
    let eval = evaluate(&net, &data.test(None), &camera, &EvalOptions::default());
    println!("test-set BEV metrics: {eval}");
}
