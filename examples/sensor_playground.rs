//! Sensor playground: explore the synthetic sensor stack without any
//! training — render a scene's camera view under all four lighting
//! presets, scan it with the LiDAR, and write every image to
//! `results/playground/` (plus terminal previews).
//!
//! Run with:
//! ```text
//! cargo run --release -p sf-bench --example sensor_playground
//! ```

use std::path::Path;

use sf_scene::{
    depth_image_from_cloud, render_ground_truth, render_rgb, LidarSpec, Lighting, PinholeCamera,
    RoadCategory, SceneBuilder,
};
use sf_tensor::TensorRng;
use sf_vision::GrayImage;

fn ascii_preview(img: &GrayImage) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let mut out = String::new();
    for y in 0..img.height() {
        for x in 0..img.width() {
            let v = (img.get(x, y).clamp(0.0, 1.0) * (RAMP.len() - 1) as f32) as usize;
            out.push(RAMP[v] as char);
        }
        out.push('\n');
    }
    out
}

fn main() -> std::io::Result<()> {
    let out_dir = Path::new("results/playground");
    std::fs::create_dir_all(out_dir)?;
    let camera = PinholeCamera::kitti_like(96, 32);
    let scene = SceneBuilder::new(RoadCategory::UrbanMarked, 2022).build();

    // Camera under all lighting presets.
    for (name, lighting) in Lighting::presets() {
        let rgb = render_rgb(&scene, &camera, lighting);
        let path = out_dir.join(format!("um_{name}.ppm"));
        rgb.write_ppm(&path)?;
        println!("--- camera, {name} (written to {}) ---", path.display());
        println!("{}", ascii_preview(&rgb.to_gray()));
    }

    // LiDAR scan → dense depth image (lighting-independent).
    let spec = LidarSpec::default();
    let cloud = spec.scan(&scene, &mut TensorRng::seed_from(7));
    println!(
        "LiDAR: {} returns over {} rings x {} azimuth steps",
        cloud.len(),
        spec.rings,
        spec.azimuth_steps
    );
    let depth = depth_image_from_cloud(&cloud, &camera, spec.max_range, 3);
    depth.write_pgm(out_dir.join("um_depth.pgm"))?;
    println!("--- dense depth image ---");
    println!("{}", ascii_preview(&depth));

    // Pixel-exact ground truth.
    let gt = render_ground_truth(&scene, &camera);
    gt.write_pgm(out_dir.join("um_gt.pgm"))?;
    println!("--- drivable-road ground truth ---");
    println!("{}", ascii_preview(&gt));
    println!(
        "road fraction: {:.1}%",
        100.0 * gt.data().iter().sum::<f32>() / gt.data().len() as f32
    );
    Ok(())
}
