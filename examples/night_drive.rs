//! Night drive: why sensor fusion matters.
//!
//! The paper's core motivation is that a camera fails under adverse
//! lighting while LiDAR does not. This example trains one fusion model,
//! then evaluates it on day-lit and night-lit versions of the *same*
//! scenes — and additionally ablates the depth input (zeroed) to show how
//! much of the night-time robustness comes from the LiDAR branch.
//!
//! Run with:
//! ```text
//! cargo run --release -p sf-bench --example night_drive
//! ```

use sf_core::{evaluate, train, EvalOptions, FusionNet, FusionScheme, NetworkConfig, TrainConfig};
use sf_dataset::{DatasetConfig, RoadDataset, Sample};
use sf_scene::Lighting;
use sf_tensor::Tensor;

/// Renders the same scene seeds under a fixed lighting preset.
fn relit(
    samples: &[&Sample],
    name: &'static str,
    lighting: Lighting,
    config: &DatasetConfig,
) -> Vec<Sample> {
    let camera = config.camera();
    samples
        .iter()
        .map(|s| Sample::render(s.category, s.seed, name, lighting, &camera))
        .collect()
}

/// Returns copies of the samples with the depth channel zeroed out —
/// simulating a camera-only perception stack.
fn without_depth(samples: &[Sample]) -> Vec<Sample> {
    samples
        .iter()
        .map(|s| Sample {
            depth: Tensor::zeros(s.depth.shape()),
            ..s.clone()
        })
        .collect()
}

fn main() {
    let dataset_config = DatasetConfig {
        train_per_category: 16,
        test_per_category: 8,
        adverse_fraction: 0.4, // expose the model to adverse light in training
        traffic_fraction: 0.25,
        ..DatasetConfig::standard()
    };
    let data = RoadDataset::generate(&dataset_config);
    let mut net =
        FusionNet::new(FusionScheme::AllFilterU, &NetworkConfig::standard()).expect("valid config");
    let train_config = TrainConfig {
        epochs: 8,
        ..TrainConfig::standard()
    };
    println!("training fusion model (RGB + LiDAR depth)...");
    train(&mut net, &data.train(None), &train_config);

    let camera = dataset_config.camera();
    let options = EvalOptions::default();
    let test = data.test(None);
    let day = relit(&test, "day", Lighting::day(), &dataset_config);
    let night = relit(&test, "night", Lighting::night(), &dataset_config);
    let night_no_depth = without_depth(&night);

    let eval = |net: &FusionNet, set: &[Sample]| {
        let refs: Vec<&Sample> = set.iter().collect();
        evaluate(net, &refs, &camera, &options)
    };
    let day_eval = eval(&net, &day);
    let night_eval = eval(&net, &night);
    let blind_eval = eval(&net, &night_no_depth);

    println!("\nsame scenes, same model, different conditions (BEV):");
    println!("  day,   RGB+LiDAR : {day_eval}");
    println!("  night, RGB+LiDAR : {night_eval}");
    println!("  night, RGB only  : {blind_eval}");
    let fusion_margin = night_eval.f_score - blind_eval.f_score;
    println!(
        "\nLiDAR keeps {:.1} F-score points on the table at night.",
        fusion_margin
    );
}
